#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace netmark::storage {

int CompareKeys(const IndexKey& a, const IndexKey& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

struct BTree::Entry {
  IndexKey key;
  RowId rid;
};

namespace {

int CompareEntryToKR(const BTree::Entry& e, const IndexKey& k, RowId r);

}  // namespace

struct BTree::Node {
  bool leaf = true;
  std::vector<Entry> entries;                   // leaf payload
  std::vector<Entry> seps;                      // internal separators (full entries)
  std::vector<std::unique_ptr<Node>> children;  // internal children
  Node* next = nullptr;                         // leaf chain

  bool IsFull(int fanout) const {
    return leaf ? entries.size() >= static_cast<size_t>(fanout)
                : seps.size() >= static_cast<size_t>(fanout);
  }
};

namespace {

int CompareEntries(const BTree::Entry& a, const BTree::Entry& b) {
  int c = CompareKeys(a.key, b.key);
  if (c != 0) return c;
  if (a.rid == b.rid) return 0;
  return a.rid < b.rid ? -1 : 1;
}

int CompareEntryToKR(const BTree::Entry& e, const IndexKey& k, RowId r) {
  int c = CompareKeys(e.key, k);
  if (c != 0) return c;
  if (e.rid == r) return 0;
  return e.rid < r ? -1 : 1;
}

// True when `key` begins with `prefix` component-wise.
bool HasPrefix(const IndexKey& key, const IndexKey& prefix) {
  if (key.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (key[i].Compare(prefix[i]) != 0) return false;
  }
  return true;
}

}  // namespace

BTree::BTree(int fanout) : fanout_(std::max(4, fanout)) {
  root_ = std::make_unique<Node>();
}
BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

void BTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[static_cast<size_t>(index)].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  Entry up;
  if (child->leaf) {
    size_t mid = child->entries.size() / 2;
    up = child->entries[mid];  // copy: leaf keeps all its entries >= mid in right
    right->entries.assign(child->entries.begin() + static_cast<long>(mid),
                          child->entries.end());
    child->entries.resize(mid);
    right->next = child->next;
    child->next = right.get();
  } else {
    size_t mid = child->seps.size() / 2;
    up = child->seps[mid];
    right->seps.assign(child->seps.begin() + static_cast<long>(mid) + 1,
                       child->seps.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->seps.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->seps.insert(parent->seps.begin() + index, std::move(up));
  parent->children.insert(parent->children.begin() + index + 1, std::move(right));
}

void BTree::InsertNonFull(Node* node, const IndexKey& key, RowId rid) {
  while (!node->leaf) {
    // First separator strictly greater than (key, rid) routes left of it.
    int idx = 0;
    int n = static_cast<int>(node->seps.size());
    while (idx < n && CompareEntryToKR(node->seps[static_cast<size_t>(idx)], key, rid) <= 0) {
      ++idx;
    }
    Node* child = node->children[static_cast<size_t>(idx)].get();
    if (child->IsFull(fanout_)) {
      SplitChild(node, idx);
      // Re-route: the new separator may direct us right.
      if (CompareEntryToKR(node->seps[static_cast<size_t>(idx)], key, rid) <= 0) ++idx;
      child = node->children[static_cast<size_t>(idx)].get();
    }
    node = child;
  }
  Entry e{key, rid};
  auto it = std::lower_bound(node->entries.begin(), node->entries.end(), e,
                             [](const Entry& a, const Entry& b) {
                               return CompareEntries(a, b) < 0;
                             });
  if (it != node->entries.end() && CompareEntries(*it, e) == 0) return;  // duplicate
  node->entries.insert(it, std::move(e));
  ++size_;
}

void BTree::Insert(const IndexKey& key, RowId rid) {
  if (root_->IsFull(fanout_)) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, rid);
}

BTree::Node* BTree::FindLeaf(const IndexKey& key) const {
  // Leftmost leaf that can contain (key, smallest rid).
  Node* node = root_.get();
  while (!node->leaf) {
    int idx = 0;
    int n = static_cast<int>(node->seps.size());
    while (idx < n && CompareKeys(node->seps[static_cast<size_t>(idx)].key, key) < 0) {
      ++idx;
    }
    // seps[idx].key >= key: entries equal to key may sit in child idx (left of
    // the separator) because separator comparison includes the rid.
    node = node->children[static_cast<size_t>(idx)].get();
  }
  return node;
}

bool BTree::Remove(const IndexKey& key, RowId rid) {
  Node* leaf = FindLeaf(key);
  // The target (key, rid) may be in a following leaf when duplicates span
  // leaves; walk the chain while keys are <= key.
  while (leaf != nullptr) {
    auto it = std::lower_bound(
        leaf->entries.begin(), leaf->entries.end(), std::make_pair(&key, rid),
        [](const Entry& e, const std::pair<const IndexKey*, RowId>& target) {
          return CompareEntryToKR(e, *target.first, target.second) < 0;
        });
    if (it != leaf->entries.end()) {
      if (CompareEntryToKR(*it, key, rid) == 0) {
        leaf->entries.erase(it);
        --size_;
        return true;
      }
      if (CompareKeys(it->key, key) > 0) return false;
      // Same key, larger rid ahead in this leaf means the pair is absent.
      return false;
    }
    leaf = leaf->next;
  }
  return false;
}

std::vector<RowId> BTree::Lookup(const IndexKey& key) const {
  std::vector<RowId> out;
  Node* leaf = FindLeaf(key);
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      int c = CompareKeys(e.key, key);
      if (c < 0) continue;
      if (c > 0) return out;
      out.push_back(e.rid);
    }
    leaf = leaf->next;
  }
  return out;
}

std::vector<RowId> BTree::Range(const IndexKey& lo, const IndexKey& hi) const {
  std::vector<RowId> out;
  Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      if (CompareKeys(e.key, lo) < 0) continue;
      if (CompareKeys(e.key, hi) > 0) return out;
      out.push_back(e.rid);
    }
    leaf = leaf->next;
  }
  return out;
}

std::vector<RowId> BTree::PrefixLookup(const IndexKey& prefix) const {
  std::vector<RowId> out;
  Node* leaf = FindLeaf(prefix);
  while (leaf != nullptr) {
    for (const Entry& e : leaf->entries) {
      if (CompareKeys(e.key, prefix) < 0) continue;
      if (!HasPrefix(e.key, prefix)) return out;
      out.push_back(e.rid);
    }
    leaf = leaf->next;
  }
  return out;
}

void BTree::VisitAll(const std::function<bool(const IndexKey&, RowId)>& visitor) const {
  Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  for (; node != nullptr; node = node->next) {
    for (const Entry& e : node->entries) {
      if (!visitor(e.key, e.rid)) return;
    }
  }
}

int BTree::height() const {
  int h = 1;
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

namespace {

// Returns leaf depth, or -1 on violation. lo/hi entry bounds may be null.
int CheckNode(const BTree::Node* node, const BTree::Entry* lo, const BTree::Entry* hi);

int CheckNode(const BTree::Node* node, const BTree::Entry* lo,
              const BTree::Entry* hi) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (i > 0 && CompareEntries(node->entries[i - 1], node->entries[i]) >= 0) {
        return -1;
      }
      if (lo != nullptr && CompareEntries(node->entries[i], *lo) < 0) return -1;
      if (hi != nullptr && CompareEntries(node->entries[i], *hi) >= 0) return -1;
    }
    return 1;
  }
  if (node->children.size() != node->seps.size() + 1) return -1;
  for (size_t i = 1; i < node->seps.size(); ++i) {
    if (CompareEntries(node->seps[i - 1], node->seps[i]) >= 0) return -1;
  }
  int depth = -2;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const BTree::Entry* child_lo = (i == 0) ? lo : &node->seps[i - 1];
    const BTree::Entry* child_hi = (i == node->seps.size()) ? hi : &node->seps[i];
    int d = CheckNode(node->children[i].get(), child_lo, child_hi);
    if (d < 0) return -1;
    if (depth == -2) depth = d;
    if (d != depth) return -1;
  }
  return depth + 1;
}

}  // namespace

bool BTree::CheckInvariants() const {
  return CheckNode(root_.get(), nullptr, nullptr) >= 0;
}

}  // namespace netmark::storage
