// MVCC snapshot benchmark: writer commit latency with and without a held
// long-lived read snapshot (docs/mvcc.md).
//
// Two instances with identical corpora: a no-reader baseline and one where
// a slow reader pins ONE snapshot for the whole run (>= 10 s at the default
// duration) and paces re-reads of the documents it froze at pin time,
// asserting every byte matches the pinned epoch. A closed-loop ingestion
// writer commits against both in interleaved slices (so machine drift hits
// both sides equally); every commit on the reader instance lands under the
// held pin.
//
// The acceptance bar for the commit-lock retirement: phase-2 writer commit
// p99 within 10% of the no-reader baseline. Under the old shared_mutex
// ReadSnapshot the held snapshot would have stalled every commit for the
// full reader pass; under epoch pins it costs version retention, not
// blocking.
//
// Latencies land in netmark_mvcc_commit_baseline_micros and
// netmark_mvcc_commit_micros on the instance registry; the CI gate watches
// `--metric netmark_mvcc_commit_micros`. The JSONL also carries a
// reader-staleness line: how many epochs behind the pinned snapshot ended,
// and how many paced re-reads stayed byte-identical.
//
// Knobs: NETMARK_BENCH_MVCC_SECONDS (per phase, default 5).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "xml/serializer.h"
#include "xmlstore/xml_store.h"

namespace netmark {
namespace {

constexpr size_t kCorpusSize = 100;
/// Documents the slow reader freezes at pin time and paces re-reads over.
constexpr size_t kReaderDocs = 20;

struct WriterResult {
  uint64_t commits = 0;
  double commits_per_sec = 0;
};

/// Closed-loop ingestion writer: every IngestContent is one commit
/// (decompose + rows + text postings + WAL fsync + version publish).
WriterResult RunWriter(Netmark* nm, observability::Histogram* micros,
                       double seconds, uint64_t seed, const char* tag) {
  workload::CorpusGenerator gen(seed);
  WriterResult result;
  int64_t t0 = MonotonicMicros();
  int64_t deadline = t0 + static_cast<int64_t>(seconds * 1e6);
  size_t i = 0;
  while (MonotonicMicros() < deadline) {
    auto doc = gen.MixedCorpus(1);
    std::string name =
        std::string("mvcc-") + tag + "-" + std::to_string(i++) + ".txt";
    int64_t start = MonotonicMicros();
    bench::Check(nm->IngestContent(name, doc[0].content).status(),
                 "writer ingest");
    micros->Observe(MonotonicMicros() - start);
    ++result.commits;
  }
  double elapsed = static_cast<double>(MonotonicMicros() - t0) / 1e6;
  result.commits_per_sec =
      elapsed > 0 ? static_cast<double>(result.commits) / elapsed : 0;
  return result;
}

struct ReaderResult {
  uint64_t reads = 0;
  uint64_t mismatches = 0;
  uint64_t pinned_epoch = 0;
  uint64_t epochs_behind = 0;  ///< commit_epoch - pinned epoch at release
};

/// The slow reader: one pin held for the whole phase, re-reading the frozen
/// documents on a fixed pace and diffing bytes against the pin-time copy.
ReaderResult RunSlowReader(xmlstore::XmlStore* store, double seconds,
                           std::atomic<bool>* stop) {
  ReaderResult result;
  auto snap = store->BeginRead();
  result.pinned_epoch = snap.epoch();

  auto docs = store->ListDocuments();
  bench::Check(docs.status(), "reader list");
  std::vector<int64_t> ids;
  std::vector<std::string> frozen;
  for (const auto& rec : *docs) {
    if (ids.size() >= kReaderDocs) break;
    ids.push_back(rec.doc_id);
    auto doc = store->Reconstruct(rec.doc_id);
    bench::Check(doc.status(), "reader freeze");
    frozen.push_back(xml::Serialize(*doc));
  }

  // Pace: spread ~4 passes over the frozen set across the phase, so the pin
  // is provably long-lived rather than a burst at the start.
  int64_t pace_us = static_cast<int64_t>(
      seconds * 1e6 / static_cast<double>(4 * ids.size() + 1));
  int64_t deadline = MonotonicMicros() + static_cast<int64_t>(seconds * 1e6);
  size_t next = 0;
  while (MonotonicMicros() < deadline &&
         !stop->load(std::memory_order_relaxed)) {
    size_t i = next++ % ids.size();
    auto doc = store->Reconstruct(ids[i]);
    if (!doc.ok() || xml::Serialize(*doc) != frozen[i]) {
      ++result.mismatches;
      std::fprintf(stderr, "slow reader: doc %lld diverged from epoch %llu: %s\n",
                   static_cast<long long>(ids[i]),
                   static_cast<unsigned long long>(result.pinned_epoch),
                   doc.ok() ? "bytes differ" : doc.status().ToString().c_str());
    }
    ++result.reads;
    std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
  }
  result.epochs_behind = store->commit_epoch() - result.pinned_epoch;
  return result;
}

}  // namespace
}  // namespace netmark

int main() {
  using namespace netmark;

  double seconds = 5.0;
  if (const char* env = std::getenv("NETMARK_BENCH_MVCC_SECONDS")) {
    double parsed = std::atof(env);
    if (parsed > 0) seconds = parsed;
  }

  // One fresh instance per phase: commit cost grows with store size (the
  // publish and GC passes walk the page table), so reusing one store would
  // bias the second phase. Identical starting corpus keeps the comparison
  // honest; the shared registry accumulates both histograms.
  bench::LoadedInstance base_inst = bench::MakeLoadedInstance(kCorpusSize);
  bench::LoadedInstance read_inst = bench::MakeLoadedInstance(kCorpusSize);
  xmlstore::XmlStore* store = read_inst.nm->store();
  observability::MetricsRegistry* registry = read_inst.nm->metrics();
  observability::Histogram* baseline_micros =
      base_inst.nm->metrics()->GetHistogram(
          "netmark_mvcc_commit_baseline_micros");
  observability::Histogram* commit_micros =
      registry->GetHistogram("netmark_mvcc_commit_micros");

  bench::ReportHeader("MVCC snapshot serving",
                      "a held read snapshot never blocks commits: writer "
                      "p99 within 10% of the no-reader baseline");
  bench::JsonLines jsonl("mvcc");
  char config[160];
  std::snprintf(config, sizeof(config),
                "corpus=%zu,reader_docs=%zu,seconds=%g,interleaved", kCorpusSize,
                kReaderDocs, seconds);
  jsonl.EmitConfig(config);

  std::printf("%-14s %10s %12s %10s %12s\n", "phase", "commits", "commits/s",
              "reads", "mismatches");

  // The slow reader pins read_inst for the ENTIRE run (2 x seconds — well
  // past the >= 5 s bar at the default duration) and paces byte-identity
  // re-reads of its frozen documents throughout.
  std::atomic<bool> stop_reader{false};
  ReaderResult reader;
  std::thread reader_thread([&] {
    reader = RunSlowReader(store, 2 * seconds + 0.5, &stop_reader);
  });
  // Let the reader pin and freeze its documents before commits start.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The two writer loops run in interleaved slices, not back-to-back
  // phases: machine drift (scheduler, page cache, turbo) over a multi-
  // second run would otherwise swamp a 10% p99 comparison. Every slice
  // of read_inst commits happens under the held pin.
  constexpr int kSlices = 10;
  WriterResult baseline, contended;
  for (int s = 0; s < kSlices; ++s) {
    std::string base_tag = "base" + std::to_string(s);
    std::string read_tag = "read" + std::to_string(s);
    WriterResult b = RunWriter(base_inst.nm.get(), baseline_micros,
                               seconds / kSlices, 21 + s, base_tag.c_str());
    WriterResult c = RunWriter(read_inst.nm.get(), commit_micros,
                               seconds / kSlices, 121 + s, read_tag.c_str());
    baseline.commits += b.commits;
    baseline.commits_per_sec += b.commits_per_sec / kSlices;
    contended.commits += c.commits;
    contended.commits_per_sec += c.commits_per_sec / kSlices;
  }
  stop_reader.store(true);
  reader_thread.join();

  std::printf("%-14s %10llu %12.0f %10s %12s\n", "baseline",
              static_cast<unsigned long long>(baseline.commits),
              baseline.commits_per_sec, "-", "-");
  jsonl.Emit("baseline", 0,
             baseline.commits > 0 ? 1e9 / baseline.commits_per_sec : 0,
             baseline.commits_per_sec, "commits/s");

  std::printf("%-14s %10llu %12.0f %10llu %12llu\n", "slow_reader",
              static_cast<unsigned long long>(contended.commits),
              contended.commits_per_sec,
              static_cast<unsigned long long>(reader.reads),
              static_cast<unsigned long long>(reader.mismatches));
  jsonl.Emit("slow_reader", static_cast<double>(reader.epochs_behind),
             contended.commits > 0 ? 1e9 / contended.commits_per_sec : 0,
             contended.commits_per_sec, "commits/s");
  // Reader-staleness line: the pin's final distance from the head plus the
  // byte-identity verdict — the snapshot-isolation half of the claim.
  jsonl.Emit("reader_staleness", static_cast<double>(reader.epochs_behind),
             0, static_cast<double>(reader.reads), "paced_reads");

  jsonl.EmitMetrics(*registry);

  observability::MetricsSnapshot base_snap = base_inst.nm->metrics()->Collect();
  observability::MetricsSnapshot snap = registry->Collect();
  double base_p99 = 0, read_p99 = 0, base_p50 = 0, read_p50 = 0;
  for (const auto& h : base_snap.histograms) {
    if (h.name == "netmark_mvcc_commit_baseline_micros") {
      base_p50 = h.p50;
      base_p99 = h.p99;
      // The baseline instance's registry isn't dumped wholesale (its metric
      // names would collide with the reader instance's); surface just the
      // baseline commit histogram for side-by-side trajectory tracking.
      jsonl.EmitSummary(h.name, h.count, h.p50, h.p95, h.p99);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "netmark_mvcc_commit_micros") {
      read_p50 = h.p50;
      read_p99 = h.p99;
    }
  }
  double delta =
      base_p99 > 0 ? (read_p99 - base_p99) / base_p99 * 100.0 : 0;
  std::printf("commit latency: baseline p50=%.0fus p99=%.0fus | "
              "slow_reader p50=%.0fus p99=%.0fus | p99 delta=%+.1f%% "
              "(acceptance bar: within 10%%)\n",
              base_p50, base_p99, read_p50, read_p99, delta);
  std::printf("reader: pinned epoch %llu ended %llu epochs behind, "
              "%llu paced reads, %llu mismatches\n",
              static_cast<unsigned long long>(reader.pinned_epoch),
              static_cast<unsigned long long>(reader.epochs_behind),
              static_cast<unsigned long long>(reader.reads),
              static_cast<unsigned long long>(reader.mismatches));
  std::printf("results: %s\n", jsonl.path().c_str());

  if (reader.mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: slow reader saw bytes diverge from its pinned epoch\n");
    return 1;
  }
  return 0;
}
