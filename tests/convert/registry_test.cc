#include "convert/registry.h"

#include <gtest/gtest.h>

namespace netmark::convert {
namespace {

TEST(RegistryTest, FileExtensionExtraction) {
  EXPECT_EQ(FileExtension("report.txt"), "txt");
  EXPECT_EQ(FileExtension("REPORT.TXT"), "txt");
  EXPECT_EQ(FileExtension("a/b/c.html"), "html");
  EXPECT_EQ(FileExtension("noext"), "");
  EXPECT_EQ(FileExtension("dir.with.dots/noext"), "");
  EXPECT_EQ(FileExtension("archive.tar.gz"), "gz");
}

TEST(RegistryTest, SelectsByExtension) {
  ConverterRegistry registry = ConverterRegistry::Default();
  auto conv = registry.Select("x.md", "anything");
  ASSERT_TRUE(conv.ok());
  EXPECT_EQ((*conv)->format(), "md");
  EXPECT_EQ((*registry.Select("x.doc", ""))->format(), "nrt");
  EXPECT_EQ((*registry.Select("x.pdf", ""))->format(), "nrt");
  EXPECT_EQ((*registry.Select("x.csv", ""))->format(), "csv");
  EXPECT_EQ((*registry.Select("x.html", ""))->format(), "html");
  EXPECT_EQ((*registry.Select("x.xml", ""))->format(), "xml");
}

TEST(RegistryTest, SniffsContentWhenNoExtension) {
  ConverterRegistry registry = ConverterRegistry::Default();
  EXPECT_EQ((*registry.Select("data", "<?xml version=\"1.0\"?><r/>"))->format(),
            "xml");
  EXPECT_EQ((*registry.Select("page", "<!DOCTYPE html><html></html>"))->format(),
            "html");
  EXPECT_EQ((*registry.Select("notes", "# Title\n\n- item\n- item\n"))->format(),
            "md");
  EXPECT_EQ((*registry.Select("rich", ".font 16 bold\nHeading\n"))->format(), "nrt");
  EXPECT_EQ((*registry.Select("sheet", "a,b\n1,2\n3,4\n"))->format(), "csv");
  EXPECT_EQ((*registry.Select("plain", "just ordinary words"))->format(), "txt");
}

TEST(RegistryTest, BinaryGarbageRejected) {
  ConverterRegistry registry = ConverterRegistry::Default();
  std::string binary("\x7f"
                     "ELF\0\0\0\0",
                     8);
  EXPECT_TRUE(registry.Select("blob", binary).status().IsNotFound());
}

TEST(RegistryTest, ConvertEndToEnd) {
  ConverterRegistry registry = ConverterRegistry::Default();
  auto doc = registry.Convert("r.txt", "OVERVIEW\nThe shuttle flew.\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->TextContent(doc->root()).find("shuttle"), std::string::npos);
  // Errors carry the file and format context.
  auto bad = registry.Convert("b.doc", ".font notanumber\nx\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("b.doc"), std::string::npos);
}

TEST(RegistryTest, SupportedFormatsListsAll) {
  ConverterRegistry registry = ConverterRegistry::Default();
  auto formats = registry.SupportedFormats();
  EXPECT_EQ(formats.size(), 7u);
}

}  // namespace
}  // namespace netmark::convert
