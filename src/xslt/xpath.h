// XPath-lite: the path-expression subset the XSLT-lite engine evaluates.
//
// Supported grammar (sufficient for the result-composition stylesheets the
// paper runs through Xalan):
//
//   path      := ('/')? step ('/' step)*  |  '//' step ('/' step)* | '.'
//   step      := axis? nametest predicate?
//   axis      := '@'            (attribute)  |  '..'  (parent) | '.' (self)
//   nametest  := NAME | '*' | 'text()'
//   predicate := '[' INT ']'                     positional (1-based)
//              | '[' '@' NAME '=' QUOTED ']'     attribute equality
//              | '[' NAME '=' QUOTED ']'         child string-value equality
//              | '[' '@' NAME ']'                attribute existence
//              | '[' NAME ']'                    child existence
//
// '//' as a path prefix (or between steps) selects descendants-or-self.

#ifndef NETMARK_XSLT_XPATH_H_
#define NETMARK_XSLT_XPATH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace netmark::xslt {

/// \brief Compiled path expression.
class XPath {
 public:
  /// Compiles an expression; syntax errors are reported with the offending
  /// fragment.
  static netmark::Result<XPath> Parse(std::string_view expr);

  /// Selects element/text nodes. Paths ending in `@attr` return an empty
  /// node-set (attributes are not nodes here; use EvaluateStrings).
  std::vector<xml::NodeId> SelectNodes(const xml::Document& doc,
                                       xml::NodeId context) const;

  /// String results: for element/text node-sets the string-value of each
  /// node; for `@attr` endings the attribute values.
  std::vector<std::string> EvaluateStrings(const xml::Document& doc,
                                           xml::NodeId context) const;

  /// First string result or "" (XPath string() semantics on a node-set).
  std::string EvaluateString(const xml::Document& doc, xml::NodeId context) const;

  /// XPath boolean(): true when the selection is non-empty (and, for string
  /// results, any string is non-empty? no — non-empty node-set suffices).
  bool EvaluateBool(const xml::Document& doc, xml::NodeId context) const;

  const std::string& expression() const { return expr_; }

 private:
  friend class XPathParserAccess;
  struct Step {
    enum class Axis { kChild, kDescendant, kAttribute, kSelf, kParent };
    enum class PredKind { kNone, kIndex, kAttrEquals, kChildEquals, kAttrExists,
                          kChildExists };
    Axis axis = Axis::kChild;
    std::string name;  // element name, attribute name, "*", or "text()"
    PredKind pred = PredKind::kNone;
    int index = 0;                // kIndex (1-based)
    std::string pred_name;        // attr/child name for predicates
    std::string pred_value;       // comparison value
  };

  // Applies steps [from..end) to the node-set, returning matching nodes.
  std::vector<xml::NodeId> Apply(const xml::Document& doc,
                                 const std::vector<xml::NodeId>& context,
                                 size_t from) const;
  bool PredicateHolds(const xml::Document& doc, xml::NodeId node,
                      const Step& step) const;

  std::string expr_;
  bool absolute_ = false;
  std::vector<Step> steps_;
};

}  // namespace netmark::xslt

#endif  // NETMARK_XSLT_XPATH_H_
