#include "xml/parser.h"

#include <array>
#include <cctype>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "xml/entities.h"

namespace netmark::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

// HTML elements that never have content.
bool IsVoidElement(std::string_view lower_name) {
  static const std::array<std::string_view, 14> kVoid = {
      "area", "base",  "br",    "col",   "embed",  "hr",   "img",
      "input", "link", "meta", "param", "source", "track", "wbr"};
  for (std::string_view v : kVoid) {
    if (v == lower_name) return true;
  }
  return false;
}

// HTML elements that are implicitly closed when a sibling of the same class
// starts (simplified HTML5 tree-construction rules).
bool ImplicitlyCloses(std::string_view open, std::string_view incoming) {
  auto any = [](std::string_view v, std::initializer_list<std::string_view> set) {
    for (std::string_view s : set) {
      if (s == v) return true;
    }
    return false;
  };
  if (open == "p" &&
      any(incoming, {"p", "div", "table", "ul", "ol", "h1", "h2", "h3", "h4", "h5",
                     "h6", "pre", "blockquote", "section", "li"})) {
    return true;
  }
  if (open == "li" && incoming == "li") return true;
  if ((open == "td" || open == "th") &&
      any(incoming, {"td", "th", "tr"})) {
    return true;
  }
  if (open == "tr" && incoming == "tr") return true;
  if ((open == "dt" || open == "dd") && any(incoming, {"dt", "dd"})) return true;
  if (open == "option" && incoming == "option") return true;
  return false;
}

class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options)
      : in_(input), opts_(options) {}

  Result<Document> Run() {
    open_stack_.push_back(doc_.root());
    while (pos_ < in_.size()) {
      if (in_[pos_] == '<') {
        NETMARK_RETURN_NOT_OK(ParseMarkup());
      } else {
        ParseText();
      }
    }
    if (open_stack_.size() != 1) {
      if (!opts_.html_mode) {
        return Status::ParseError("unclosed element <" +
                                  doc_.name(open_stack_.back()) + "> at end of input");
      }
      // HTML mode: silently close everything left open.
      open_stack_.resize(1);
    }
    return std::move(doc_);
  }

 private:
  Status ParseMarkup() {
    // pos_ points at '<'.
    if (pos_ + 1 >= in_.size()) {
      // Trailing lone '<': treat as text.
      AppendTextNode("<");
      ++pos_;
      return Status::OK();
    }
    char next = in_[pos_ + 1];
    if (next == '!') {
      if (in_.compare(pos_, 4, "<!--") == 0) return ParseComment();
      if (in_.compare(pos_, 9, "<![CDATA[") == 0) return ParseCData();
      return SkipDeclaration();  // <!DOCTYPE ...> and friends
    }
    if (next == '?') return ParseProcessingInstruction();
    if (next == '/') return ParseCloseTag();
    if (IsNameStartChar(next)) return ParseOpenTag();
    // Stray '<' followed by junk: tolerate as text in HTML mode.
    if (opts_.html_mode) {
      AppendTextNode("<");
      ++pos_;
      return Status::OK();
    }
    return Status::ParseError(StringPrintf("unexpected character after '<' at offset %zu",
                                           pos_));
  }

  void ParseText() {
    size_t start = pos_;
    while (pos_ < in_.size() && in_[pos_] != '<') ++pos_;
    std::string_view raw = in_.substr(start, pos_ - start);
    if (!opts_.keep_whitespace_text && TrimView(raw).empty()) return;
    AppendTextNode(DecodeEntities(raw));
  }

  void AppendTextNode(std::string text) {
    NodeId parent = open_stack_.back();
    // Merge with a preceding text node to keep trees small.
    NodeId last = doc_.last_child(parent);
    if (last != kInvalidNode && doc_.kind(last) == NodeKind::kText) {
      doc_.set_data(last, doc_.data(last) + text);
      return;
    }
    doc_.AppendChild(parent, doc_.CreateText(std::move(text)));
  }

  Status ParseComment() {
    size_t end = in_.find("-->", pos_ + 4);
    if (end == std::string_view::npos) {
      if (opts_.html_mode) {
        pos_ = in_.size();
        return Status::OK();
      }
      return Status::ParseError("unterminated comment");
    }
    if (opts_.keep_comments) {
      doc_.AppendChild(open_stack_.back(),
                       doc_.CreateComment(std::string(in_.substr(pos_ + 4, end - pos_ - 4))));
    }
    pos_ = end + 3;
    return Status::OK();
  }

  Status ParseCData() {
    size_t body = pos_ + 9;
    size_t end = in_.find("]]>", body);
    if (end == std::string_view::npos) {
      if (opts_.html_mode) {
        // Tolerate: take everything to EOF as the CDATA body.
        doc_.AppendChild(open_stack_.back(),
                         doc_.CreateCData(std::string(in_.substr(body))));
        pos_ = in_.size();
        return Status::OK();
      }
      return Status::ParseError("unterminated CDATA");
    }
    doc_.AppendChild(open_stack_.back(),
                     doc_.CreateCData(std::string(in_.substr(body, end - body))));
    pos_ = end + 3;
    return Status::OK();
  }

  Status SkipDeclaration() {
    // <!DOCTYPE ...> — may contain an internal subset in [...]
    size_t i = pos_ + 2;
    int bracket_depth = 0;
    while (i < in_.size()) {
      char c = in_[i];
      if (c == '[') ++bracket_depth;
      else if (c == ']') --bracket_depth;
      else if (c == '>' && bracket_depth <= 0) {
        pos_ = i + 1;
        return Status::OK();
      }
      ++i;
    }
    if (opts_.html_mode) {  // tolerate: drop the truncated declaration
      pos_ = in_.size();
      return Status::OK();
    }
    return Status::ParseError("unterminated <! declaration");
  }

  Status ParseProcessingInstruction() {
    size_t end = in_.find("?>", pos_ + 2);
    if (end == std::string_view::npos) {
      if (opts_.html_mode) {  // tolerate: drop the truncated PI
        pos_ = in_.size();
        return Status::OK();
      }
      return Status::ParseError("unterminated processing instruction");
    }
    std::string_view body = in_.substr(pos_ + 2, end - pos_ - 2);
    size_t name_end = 0;
    while (name_end < body.size() && IsNameChar(body[name_end])) ++name_end;
    std::string name(body.substr(0, name_end));
    std::string data = Trim(body.substr(name_end));
    // The XML declaration <?xml ...?> is metadata, not content; drop it.
    if (!EqualsIgnoreCase(name, "xml")) {
      doc_.AppendChild(open_stack_.back(),
                       doc_.CreateProcessingInstruction(std::move(name), std::move(data)));
    }
    pos_ = end + 2;
    return Status::OK();
  }

  Status ParseOpenTag() {
    size_t i = pos_ + 1;
    size_t name_start = i;
    while (i < in_.size() && IsNameChar(in_[i])) ++i;
    std::string name(in_.substr(name_start, i - name_start));
    if (opts_.html_mode) name = ToLower(name);

    // Attributes.
    std::vector<Attribute> attrs;
    bool self_closing = false;
    while (true) {
      while (i < in_.size() && std::isspace(static_cast<unsigned char>(in_[i]))) ++i;
      if (i >= in_.size()) {
        if (opts_.html_mode) {  // tolerate: drop the truncated tag
          pos_ = in_.size();
          return Status::OK();
        }
        return Status::ParseError("unterminated tag <" + name);
      }
      if (in_[i] == '>') {
        ++i;
        break;
      }
      if (in_[i] == '/' && i + 1 < in_.size() && in_[i + 1] == '>') {
        self_closing = true;
        i += 2;
        break;
      }
      if (!IsNameStartChar(in_[i])) {
        if (opts_.html_mode) {  // skip junk
          ++i;
          continue;
        }
        return Status::ParseError(
            StringPrintf("bad attribute syntax in <%s> at offset %zu", name.c_str(), i));
      }
      size_t an_start = i;
      while (i < in_.size() && IsNameChar(in_[i])) ++i;
      std::string attr_name(in_.substr(an_start, i - an_start));
      if (opts_.html_mode) attr_name = ToLower(attr_name);
      while (i < in_.size() && std::isspace(static_cast<unsigned char>(in_[i]))) ++i;
      std::string attr_value;
      if (i < in_.size() && in_[i] == '=') {
        ++i;
        while (i < in_.size() && std::isspace(static_cast<unsigned char>(in_[i]))) ++i;
        if (i < in_.size() && (in_[i] == '"' || in_[i] == '\'')) {
          char quote = in_[i];
          ++i;
          size_t v_start = i;
          while (i < in_.size() && in_[i] != quote) ++i;
          if (i >= in_.size()) {
            if (opts_.html_mode) {  // tolerate: drop the truncated tag
              pos_ = in_.size();
              return Status::OK();
            }
            return Status::ParseError("unterminated attribute value in <" + name + ">");
          }
          attr_value = DecodeEntities(in_.substr(v_start, i - v_start));
          ++i;
        } else {
          // Unquoted value (HTML tolerance; also accepted in XML mode for
          // robustness since NETMARK ingests messy data).
          size_t v_start = i;
          while (i < in_.size() && !std::isspace(static_cast<unsigned char>(in_[i])) &&
                 in_[i] != '>' && in_[i] != '/') {
            ++i;
          }
          attr_value = DecodeEntities(in_.substr(v_start, i - v_start));
        }
      }
      attrs.push_back(Attribute{std::move(attr_name), std::move(attr_value)});
    }

    if (opts_.html_mode) {
      // Implicit closes: pop while the innermost open element yields to the
      // incoming one.
      while (open_stack_.size() > 1 &&
             ImplicitlyCloses(doc_.name(open_stack_.back()), name)) {
        open_stack_.pop_back();
      }
    }

    NodeId el = doc_.CreateElement(name);
    for (Attribute& a : attrs) {
      doc_.AddAttribute(el, std::move(a.name), std::move(a.value));
    }
    doc_.AppendChild(open_stack_.back(), el);

    bool is_void = opts_.html_mode && IsVoidElement(name);
    if (!self_closing && !is_void) {
      if (opts_.html_mode && (name == "script" || name == "style")) {
        // Raw-text elements: consume verbatim until the matching close tag.
        std::string close = "</" + name;
        size_t end = i;
        while (true) {
          end = FindCaseInsensitive(in_, close, end);
          if (end == std::string_view::npos) {
            end = in_.size();
            break;
          }
          size_t after = end + close.size();
          if (after >= in_.size() || in_[after] == '>' ||
              std::isspace(static_cast<unsigned char>(in_[after]))) {
            break;
          }
          ++end;
        }
        std::string_view raw = in_.substr(i, end - i);
        if (!TrimView(raw).empty()) {
          doc_.AppendChild(el, doc_.CreateText(std::string(raw)));
        }
        size_t gt = in_.find('>', end);
        i = (gt == std::string_view::npos) ? in_.size() : gt + 1;
      } else {
        open_stack_.push_back(el);
      }
    }
    pos_ = i;
    return Status::OK();
  }

  static size_t FindCaseInsensitive(std::string_view haystack, std::string_view needle,
                                    size_t from) {
    if (needle.empty() || haystack.size() < needle.size()) return std::string_view::npos;
    for (size_t i = from; i + needle.size() <= haystack.size(); ++i) {
      if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) return i;
    }
    return std::string_view::npos;
  }

  Status ParseCloseTag() {
    size_t i = pos_ + 2;
    size_t name_start = i;
    while (i < in_.size() && IsNameChar(in_[i])) ++i;
    std::string name(in_.substr(name_start, i - name_start));
    if (opts_.html_mode) name = ToLower(name);
    while (i < in_.size() && in_[i] != '>') ++i;
    if (i >= in_.size()) {
      if (opts_.html_mode) {  // tolerate: drop the truncated close tag
        pos_ = in_.size();
        return Status::OK();
      }
      return Status::ParseError("unterminated close tag </" + name);
    }
    ++i;

    // Find the matching open element.
    int match = -1;
    for (int d = static_cast<int>(open_stack_.size()) - 1; d >= 1; --d) {
      if (doc_.name(open_stack_[static_cast<size_t>(d)]) == name) {
        match = d;
        break;
      }
    }
    if (match < 0) {
      if (opts_.html_mode) {
        pos_ = i;  // stray close tag: ignore
        return Status::OK();
      }
      return Status::ParseError("close tag </" + name + "> with no open element");
    }
    if (!opts_.html_mode &&
        static_cast<size_t>(match) != open_stack_.size() - 1) {
      return Status::ParseError("mismatched close tag </" + name + ">; expected </" +
                                doc_.name(open_stack_.back()) + ">");
    }
    open_stack_.resize(static_cast<size_t>(match));
    pos_ = i;
    return Status::OK();
  }

  std::string_view in_;
  ParseOptions opts_;
  Document doc_;
  std::vector<NodeId> open_stack_;
  size_t pos_ = 0;
};

}  // namespace

Result<Document> Parse(std::string_view input, const ParseOptions& options) {
  return ParserImpl(input, options).Run();
}

}  // namespace netmark::xml
