#include "xslt/xpath.h"

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace netmark::xslt {
namespace {

class XPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseXml(
        "<catalog>"
        "<book id=\"b1\" lang=\"en\"><title>Alpha</title><price>10</price></book>"
        "<book id=\"b2\"><title>Beta</title><price>20</price></book>"
        "<journal id=\"j1\"><title>Gamma</title></journal>"
        "<note>standalone text</note>"
        "</catalog>");
    ASSERT_TRUE(doc.ok());
    doc_ = std::make_unique<xml::Document>(std::move(*doc));
  }

  std::vector<std::string> Strings(const std::string& expr, xml::NodeId ctx = -2) {
    auto path = XPath::Parse(expr);
    EXPECT_TRUE(path.ok()) << path.status().ToString();
    if (!path.ok()) return {};
    return path->EvaluateStrings(*doc_, ctx == -2 ? doc_->root() : ctx);
  }

  size_t Count(const std::string& expr) {
    auto path = XPath::Parse(expr);
    EXPECT_TRUE(path.ok()) << path.status().ToString();
    if (!path.ok()) return 0;
    return path->SelectNodes(*doc_, doc_->root()).size();
  }

  std::unique_ptr<xml::Document> doc_;
};

TEST_F(XPathTest, ChildSteps) {
  EXPECT_EQ(Count("catalog"), 1u);
  EXPECT_EQ(Count("catalog/book"), 2u);
  EXPECT_EQ(Count("catalog/book/title"), 2u);
  EXPECT_EQ(Count("catalog/missing"), 0u);
}

TEST_F(XPathTest, AbsoluteVsRelative) {
  auto path = XPath::Parse("/catalog/book");
  ASSERT_TRUE(path.ok());
  // Absolute paths ignore the context node.
  xml::NodeId book = doc_->FirstChildElement(doc_->DocumentElement(), "book");
  EXPECT_EQ(path->SelectNodes(*doc_, book).size(), 2u);
}

TEST_F(XPathTest, Wildcard) {
  EXPECT_EQ(Count("catalog/*"), 4u);
  EXPECT_EQ(Count("catalog/*/title"), 3u);
}

TEST_F(XPathTest, DescendantAxis) {
  EXPECT_EQ(Count("//title"), 3u);
  EXPECT_EQ(Count("//book/title"), 2u);
  EXPECT_EQ(Count("catalog//price"), 2u);
}

TEST_F(XPathTest, TextNodes) {
  auto strings = Strings("catalog/note/text()");
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "standalone text");
}

TEST_F(XPathTest, AttributeValues) {
  auto ids = Strings("catalog/book/@id");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "b1");
  EXPECT_EQ(ids[1], "b2");
  // Missing attribute on one node yields fewer strings.
  EXPECT_EQ(Strings("catalog/book/@lang").size(), 1u);
  EXPECT_EQ(Strings("catalog/*/@id").size(), 3u);
}

TEST_F(XPathTest, PositionalPredicate) {
  auto strings = Strings("catalog/book[2]/title");
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "Beta");
  EXPECT_EQ(Count("catalog/book[3]"), 0u);
}

TEST_F(XPathTest, AttributePredicates) {
  EXPECT_EQ(Count("catalog/book[@id='b2']"), 1u);
  EXPECT_EQ(Count("catalog/book[@lang]"), 1u);
  EXPECT_EQ(Count("catalog/book[@id='nope']"), 0u);
}

TEST_F(XPathTest, ChildPredicates) {
  EXPECT_EQ(Count("catalog/book[title='Alpha']"), 1u);
  EXPECT_EQ(Count("catalog/*[title]"), 3u);
  EXPECT_EQ(Count("catalog/book[title='Gamma']"), 0u);
}

TEST_F(XPathTest, SelfAndParent) {
  xml::NodeId book = doc_->FirstChildElement(doc_->DocumentElement(), "book");
  auto self = XPath::Parse(".");
  ASSERT_TRUE(self.ok());
  auto nodes = self->SelectNodes(*doc_, book);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], book);

  auto parent = XPath::Parse("../journal");
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->SelectNodes(*doc_, book).size(), 1u);
}

TEST_F(XPathTest, StringAndBoolCoercion) {
  auto path = XPath::Parse("catalog/book/title");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->EvaluateString(*doc_, doc_->root()), "Alpha");
  EXPECT_TRUE(path->EvaluateBool(*doc_, doc_->root()));
  auto missing = XPath::Parse("catalog/nothing");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->EvaluateString(*doc_, doc_->root()), "");
  EXPECT_FALSE(missing->EvaluateBool(*doc_, doc_->root()));
}

TEST_F(XPathTest, RootPath) {
  auto path = XPath::Parse("/");
  ASSERT_TRUE(path.ok());
  auto nodes = path->SelectNodes(*doc_, doc_->DocumentElement());
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], doc_->root());
}

TEST_F(XPathTest, ParseErrors) {
  EXPECT_FALSE(XPath::Parse("").ok());
  EXPECT_FALSE(XPath::Parse("a/").ok());
  EXPECT_FALSE(XPath::Parse("a[").ok());
  EXPECT_FALSE(XPath::Parse("a[]").ok());
  EXPECT_FALSE(XPath::Parse("a[@x=unquoted]").ok());
  EXPECT_FALSE(XPath::Parse("a[0]").ok());
  EXPECT_FALSE(XPath::Parse("a b").ok());
}

}  // namespace
}  // namespace netmark::xslt
