// Full-pipeline integration: generate corpus -> daemon ingest -> XDB query
// -> XSLT composition, all through real components.

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "workload/corpus.h"
#include "xml/parser.h"

namespace netmark {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("e2e");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    NetmarkOptions options;
    options.data_dir = dir_->Sub("data").string();
    auto nm = Netmark::Open(options);
    ASSERT_TRUE(nm.ok());
    nm_ = std::move(*nm);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Netmark> nm_;
};

TEST_F(EndToEndTest, CorpusThroughDaemonThroughQueries) {
  // Drop a generated mixed corpus into the watched folder.
  workload::CorpusGenerator gen(2025);
  auto corpus = gen.MixedCorpus(30);
  std::filesystem::path drop = dir_->Sub("drop");
  std::filesystem::create_directories(drop);
  for (const auto& doc : corpus) {
    ASSERT_TRUE(WriteFile(drop / doc.file_name, doc.content).ok());
  }
  server::DaemonOptions daemon_opts;
  daemon_opts.drop_dir = drop;
  daemon_opts.stable_age = std::chrono::milliseconds(0);  // files fully written
  ASSERT_TRUE(nm_->StartDaemon(daemon_opts).ok());
  auto processed = nm_->ProcessDropFolderOnce();
  ASSERT_TRUE(processed.ok());
  // The daemon thread may have taken some already; together they got all 30.
  // Stop before reading the store: it is single-writer, not reader-safe
  // while the poll thread may still be committing.
  nm_->StopDaemon();
  EXPECT_EQ(nm_->store()->document_count(), 30u);

  // Context search is keyword-based (paper §2.1.4), so "Budget" matches the
  // proposals' "Budget" headings, the task plans' "3. Budget Summary" and the
  // budget sheets' file-name sections — 15 of the 30 documents.
  auto hits = nm_->Query("context=Budget");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 15u);
  size_t proposals = 0;
  for (const auto& hit : *hits) {
    if (hit.file_name.find("proposal_") != std::string::npos) {
      ++proposals;
      EXPECT_NE(hit.text.find("requested amount"), std::string::npos);
    }
  }
  EXPECT_EQ(proposals, 5u);  // 30 docs / 6 kinds

  // Combined query on task plans.
  auto budget_summaries = nm_->Query("context=Budget+Summary&content=FY2005");
  ASSERT_TRUE(budget_summaries.ok());
  EXPECT_EQ(budget_summaries->size(), 5u);  // 5 task plans
}

TEST_F(EndToEndTest, IbpdStyleComposition) {
  // The IBPD scenario: integrate budget sections from many task plans into
  // one document via XSLT.
  workload::CorpusGenerator gen(7);
  for (int i = 0; i < 12; ++i) {
    auto doc = gen.TaskPlan(i);
    ASSERT_TRUE(nm_->IngestContent(doc.file_name, doc.content).ok());
  }
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"/\">"
      "<ibpd title=\"Integrated Budget Performance Document\">"
      "<xsl:for-each select=\"results/result\">"
      "<xsl:sort select=\"@doc\"/>"
      "<budget-entry source=\"{@doc}\">"
      "<xsl:value-of select=\"content\"/>"
      "</budget-entry>"
      "</xsl:for-each>"
      "</ibpd>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  auto composed = nm_->QueryAndTransform("context=Budget+Summary", sheet);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  // One integrated document containing an entry per task plan.
  auto doc = xml::ParseXml(*composed);
  ASSERT_TRUE(doc.ok());
  xml::NodeId ibpd = doc->DocumentElement();
  EXPECT_EQ(doc->name(ibpd), "ibpd");
  auto entries = doc->ChildElements(ibpd);
  ASSERT_EQ(entries.size(), 12u);
  // Sorted by source file name.
  EXPECT_EQ(doc->GetAttribute(entries[0], "source"), "taskplan_0.txt");
  for (xml::NodeId e : entries) {
    EXPECT_NE(doc->TextContent(e).find("FY2005"), std::string::npos);
  }
}

TEST_F(EndToEndTest, ProposalFinancialAggregation) {
  // The Proposal Financial Management scenario: per-division statistics over
  // Budget sections of submitted proposals, computed client-side.
  workload::CorpusGenerator gen(99);
  for (int i = 0; i < 20; ++i) {
    auto doc = gen.Proposal(i);
    ASSERT_TRUE(nm_->IngestContent(doc.file_name, doc.content).ok());
  }
  auto hits = nm_->Query("context=Budget");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 20u);
  // Amounts are parseable out of each section ("requested amount is N").
  int64_t total = 0;
  int parsed = 0;
  for (const auto& hit : *hits) {
    size_t pos = hit.text.find("requested amount is ");
    ASSERT_NE(pos, std::string::npos);
    total += std::stoll(hit.text.substr(pos + 20));
    ++parsed;
  }
  EXPECT_EQ(parsed, 20);
  EXPECT_GT(total, 20 * 50);  // amounts are in [50, 1000)
  EXPECT_LT(total, 20 * 1000);
}

TEST_F(EndToEndTest, PersistsEverythingAcrossReopen) {
  workload::CorpusGenerator gen(31);
  auto doc = gen.Proposal(0);
  ASSERT_TRUE(nm_->IngestContent(doc.file_name, doc.content).ok());
  std::string data_dir = dir_->Sub("data").string();
  ASSERT_TRUE(nm_->store()->Flush().ok());
  nm_.reset();

  NetmarkOptions options;
  options.data_dir = data_dir;
  auto reopened = Netmark::Open(options);
  ASSERT_TRUE(reopened.ok());
  auto hits = (*reopened)->Query("context=Budget");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

}  // namespace
}  // namespace netmark
