// File-backed page manager.
//
// Pages are cached in memory once touched and written back on Flush/close.
// This favors the NETMARK workload (bulk document ingest, read-mostly
// querying) over strict memory bounds; an eviction policy could be added
// behind the same interface.

#ifndef NETMARK_STORAGE_PAGER_H_
#define NETMARK_STORAGE_PAGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/page.h"
#include "storage/row_id.h"

namespace netmark::storage {

/// \brief Owns the page file: allocation, fetch, write-back.
class Pager {
 public:
  /// Opens (creating if absent) the page file at `path`.
  static netmark::Result<std::unique_ptr<Pager>> Open(const std::string& path);

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Number of pages in the file.
  PageId page_count() const { return page_count_; }

  /// Allocates a fresh, zero-initialized page and returns its id.
  netmark::Result<PageId> Allocate();

  /// Fetches a page for reading; the pointer stays valid until the Pager is
  /// destroyed (buffers are never evicted).
  netmark::Result<Page> Fetch(PageId id);

  /// Marks a page dirty so Flush persists it.
  void MarkDirty(PageId id);

  /// Writes all dirty pages (and the page count) to disk.
  netmark::Status Flush();

  /// Count of pages read from disk (cache misses), for benchmarks.
  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }

 private:
  Pager(std::string path, int fd, PageId page_count)
      : path_(std::move(path)), fd_(fd), page_count_(page_count) {}

  netmark::Result<uint8_t*> Buffer(PageId id);

  std::string path_;
  int fd_;
  PageId page_count_ = 0;
  std::unordered_map<PageId, std::unique_ptr<uint8_t[]>> cache_;
  std::unordered_map<PageId, bool> dirty_;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_PAGER_H_
