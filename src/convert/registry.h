// Converter registry: extension- and content-based format dispatch.

#ifndef NETMARK_CONVERT_REGISTRY_H_
#define NETMARK_CONVERT_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "convert/converter.h"

namespace netmark::convert {

/// \brief Holds converters and routes documents to the right one.
class ConverterRegistry {
 public:
  /// Registry pre-loaded with every built-in converter.
  static ConverterRegistry Default();

  /// Adds a converter; later registrations win extension conflicts.
  void Register(std::unique_ptr<Converter> converter);

  /// Picks a converter: extension match first, then content sniffing, then
  /// the plain-text fallback. Returns NotFound only for binary garbage.
  netmark::Result<const Converter*> Select(const std::string& file_name,
                                           std::string_view content) const;

  /// One-call conversion.
  netmark::Result<xml::Document> Convert(const std::string& file_name,
                                         std::string_view content) const;

  std::vector<std::string> SupportedFormats() const;

 private:
  std::vector<std::unique_ptr<Converter>> converters_;
};

/// \brief Lower-cased extension of a path ("" when absent).
std::string FileExtension(const std::string& file_name);

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_REGISTRY_H_
