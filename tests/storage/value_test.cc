#include "storage/value.h"

#include <gtest/gtest.h>

namespace netmark::storage {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).type(), ValueType::kInt64);
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_EQ(Value::Real(2.5).type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_EQ(Value::Str("x").AsStr(), "x");
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Real(2.5)), 0);
  EXPECT_GT(Value::Real(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NumbersBeforeStrings) {
  EXPECT_LT(Value::Int(999).Compare(Value::Str("0")), 0);
  EXPECT_GT(Value::Str("a").Compare(Value::Real(1e18)), 0);
}

TEST(ValueTest, StringByteOrder) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_LT(Value::Str("ab").Compare(Value::Str("abc")), 0);
  EXPECT_EQ(Value::Str("same").Compare(Value::Str("same")), 0);
}

TEST(ValueTest, OperatorsAgreeWithCompare) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Int(2) == Value::Real(2.0));
  EXPECT_TRUE(Value::Str("a") != Value::Str("b"));
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // Values beyond double's 53-bit mantissa must still compare correctly
  // int-to-int.
  int64_t big = (1LL << 62) + 1;
  EXPECT_LT(Value::Int(big).Compare(Value::Int(big + 1)), 0);
  EXPECT_EQ(Value::Int(big).Compare(Value::Int(big)), 0);
}

TEST(ValueTest, TypeNamesRoundTrip) {
  for (ValueType t : {ValueType::kNull, ValueType::kInt64, ValueType::kDouble,
                      ValueType::kString}) {
    auto parsed = ValueTypeFromString(ValueTypeToString(t));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(ValueTypeFromString("BLOB").ok());
}

}  // namespace
}  // namespace netmark::storage
