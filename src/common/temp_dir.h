// Scoped temporary directory for tests, benches and the ingestion daemon's
// staging areas. Removed recursively on destruction.

#ifndef NETMARK_COMMON_TEMP_DIR_H_
#define NETMARK_COMMON_TEMP_DIR_H_

#include <filesystem>
#include <string>

#include "common/result.h"

namespace netmark {

/// \brief RAII temporary directory under the system temp path.
class TempDir {
 public:
  /// Creates a fresh directory named `<prefix>-<random>`.
  static Result<TempDir> Make(const std::string& prefix = "netmark");

  TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  TempDir& operator=(TempDir&& other) noexcept {
    if (this != &other) {
      Remove();
      path_ = std::move(other.path_);
      other.path_.clear();
    }
    return *this;
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  ~TempDir() { Remove(); }

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }
  /// Joins a relative name onto the directory.
  std::filesystem::path Sub(const std::string& name) const { return path_ / name; }

 private:
  explicit TempDir(std::filesystem::path p) : path_(std::move(p)) {}
  void Remove() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  std::filesystem::path path_;
};

/// \brief Writes `content` to `path`, creating parent directories.
Status WriteFile(const std::filesystem::path& path, std::string_view content);
/// \brief Crash-safe write: writes to a sibling temp file, fsyncs it, then
/// renames over `path` (readers see the old or the new content, never a
/// torn mix).
Status WriteFileAtomic(const std::filesystem::path& path, std::string_view content);
/// \brief Reads an entire file.
Result<std::string> ReadFile(const std::filesystem::path& path);

}  // namespace netmark

#endif  // NETMARK_COMMON_TEMP_DIR_H_
