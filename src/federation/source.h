// Federated sources and their capability descriptors (paper §2.1.5).
//
// "A source that is queried need not necessarily have XML or even
// Context+Content searching capabilities. However NETMARK 'augments' the
// query capability in that it uses whatever query and search capabilities
// are available at the source and then does further processing required."

#ifndef NETMARK_FEDERATION_SOURCE_H_
#define NETMARK_FEDERATION_SOURCE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "query/xdb_query.h"

namespace netmark::observability {
class Trace;
}  // namespace netmark::observability

namespace netmark::federation {

/// \brief Per-call deadline threaded from the query entry point down to every
/// source attempt ("a slow remote costs its budget and nothing more"), plus
/// the request's trace so transports can hang their spans under the calling
/// source's span. The trace pointer is valid for the duration of the call
/// (the router's fan-out jobs hold shared ownership of the trace).
struct CallContext {
  /// Absolute deadline in MonotonicMicros() time; 0 = unbounded.
  int64_t deadline_micros = 0;
  /// Request trace (null = untraced call) and the span to parent under.
  observability::Trace* trace = nullptr;
  int span = -1;

  static CallContext Unbounded() { return CallContext{}; }
  static CallContext WithTimeoutMs(int64_t timeout_ms) {
    return CallContext{netmark::MonotonicMicros() + timeout_ms * 1000};
  }

  /// Copy of this context re-parented under `span` of `trace`.
  CallContext WithSpan(observability::Trace* new_trace, int new_span) const {
    CallContext out = *this;
    out.trace = new_trace;
    out.span = new_span;
    return out;
  }

  bool bounded() const { return deadline_micros != 0; }
  bool expired() const {
    return bounded() && netmark::MonotonicMicros() >= deadline_micros;
  }
  /// Remaining budget in microseconds (max() when unbounded, <= 0 when
  /// expired).
  int64_t remaining_micros() const {
    if (!bounded()) return std::numeric_limits<int64_t>::max();
    return deadline_micros - netmark::MonotonicMicros();
  }
  int64_t remaining_ms() const {
    int64_t us = remaining_micros();
    if (us == std::numeric_limits<int64_t>::max()) return us;
    return us / 1000;
  }
  /// The tighter of this deadline and `now + timeout_ms` (timeout_ms <= 0
  /// leaves the context unchanged). Trace attribution is preserved.
  CallContext Tightened(int64_t timeout_ms) const {
    if (timeout_ms <= 0) return *this;
    int64_t candidate = netmark::MonotonicMicros() + timeout_ms * 1000;
    if (!bounded() || candidate < deadline_micros) {
      CallContext out = *this;
      out.deadline_micros = candidate;
      return out;
    }
    return *this;
  }
};

/// What a source can evaluate natively. The router pushes down the largest
/// supported sub-query and augments the remainder itself.
struct Capabilities {
  bool context_search = false;  ///< heading-scoped section queries
  bool content_search = false;  ///< keyword document queries
  bool phrase_search = false;   ///< quoted phrases in keys
  bool returns_markup = false;  ///< hits carry document/section XML

  static Capabilities Full() { return {true, true, true, true}; }
  static Capabilities ContentOnly() { return {false, true, false, false}; }
};

/// One hit returned by a source.
struct FederatedHit {
  std::string source;       ///< source name (filled by the router)
  int64_t doc_id = 0;       ///< source-local document id
  std::string file_name;
  std::string heading;      ///< section heading ("" for document-level hits)
  std::string text;         ///< section text, or full document text
  std::string markup;       ///< raw XML of the matched unit, when available
};

/// \brief One information source inside a databank.
class Source {
 public:
  virtual ~Source() = default;
  virtual const std::string& name() const = 0;
  virtual Capabilities capabilities() const = 0;

  /// Executes the *supported subset* of `query` (the router guarantees it
  /// only sends what `capabilities()` advertises) and returns raw hits.
  /// Implementations should honour `ctx.deadline_micros` and return
  /// Status::DeadlineExceeded once the budget is spent.
  virtual netmark::Result<std::vector<FederatedHit>> Execute(
      const query::XdbQuery& query, const CallContext& ctx) = 0;

  /// Convenience: execute with no deadline.
  netmark::Result<std::vector<FederatedHit>> Execute(const query::XdbQuery& query) {
    return Execute(query, CallContext::Unbounded());
  }
};

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_SOURCE_H_
