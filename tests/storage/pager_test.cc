#include "storage/pager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/env.h"
#include "common/temp_dir.h"

namespace netmark::storage {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("pager");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    path_ = (dir_->path() / "pages.bin").string();
  }
  // XORs one byte of the on-disk page file (simulated at-rest bit rot).
  void FlipByte(size_t offset) {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
  }

  std::unique_ptr<TempDir> dir_;
  std::string path_;
};

TEST_F(PagerTest, FreshFileHasNoPages) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 0u);
  EXPECT_TRUE((*pager)->Fetch(0).status().IsInvalidArgument());
}

TEST_F(PagerTest, AllocateInitializesAndFetches) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto id = (*pager)->Allocate();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  auto page = (*pager)->Fetch(*id);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->slot_count(), 0);
  // New pages are born v1: the CRC trailer is reserved from the start.
  EXPECT_EQ(page->free_end(), kPageSize - kPageTrailerSize);
  EXPECT_EQ(PageVersion(page->raw()), kPageFormatV1);
  EXPECT_EQ((*pager)->page_count(), 1u);
}

TEST_F(PagerTest, DirtyPagesPersistAcrossReopen) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 5; ++i) {
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      auto page = (*pager)->Fetch(*id);
      ASSERT_TRUE(page.ok());
      page->Insert("page " + std::to_string(i));
      (*pager)->MarkDirty(*id);
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_EQ((*pager)->page_count(), 5u);
  for (PageId i = 0; i < 5; ++i) {
    auto page = (*pager)->Fetch(i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "page " + std::to_string(i));
  }
}

TEST_F(PagerTest, UnflushedChangesWrittenByDestructor) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("auto-flushed");
    (*pager)->MarkDirty(*id);
    // no explicit Flush: the destructor must write back
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Fetch(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Get(0), "auto-flushed");
}

TEST_F(PagerTest, ReadCountsTrackCacheMisses) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 3; ++i) ASSERT_TRUE((*pager)->Allocate().ok());
    ASSERT_TRUE((*pager)->Flush().ok());
    EXPECT_EQ((*pager)->pages_written(), 3u);
    // Freshly allocated pages are cached: no reads.
    EXPECT_EQ((*pager)->pages_read(), 0u);
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  ASSERT_TRUE((*pager)->Fetch(1).ok());
  ASSERT_TRUE((*pager)->Fetch(1).ok());  // second fetch hits the cache
  EXPECT_EQ((*pager)->pages_read(), 1u);
}

TEST_F(PagerTest, CorruptSizeRejected) {
  ASSERT_TRUE(WriteFile(path_, std::string(kPageSize + 17, 'x')).ok());
  EXPECT_TRUE(Pager::Open(path_).status().IsCorruption());
}

TEST_F(PagerTest, ManyPagesSurviveRoundTrip) {
  const int kPages = 300;  // ~2.4 MB file
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < kPages; ++i) {
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      auto page = (*pager)->Fetch(*id);
      std::string payload = "payload-" + std::to_string(i);
      page->Insert(payload);
      (*pager)->MarkDirty(*id);
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  ASSERT_EQ((*pager)->page_count(), static_cast<PageId>(kPages));
  for (int i = 0; i < kPages; i += 37) {
    auto page = (*pager)->Fetch(static_cast<PageId>(i));
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "payload-" + std::to_string(i));
  }
}

TEST_F(PagerTest, FlushPropagatesWriteErrorAndKeepsPageDirty) {
  // Page 1's write (the env's 2nd write overall) fails once with EIO; pages
  // 0 and 2 must still be attempted.
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kWriteEio;
  spec.nth = 2;
  spec.sticky = false;
  FaultInjectingEnv env(spec);
  auto pager = Pager::Open(path_, PagerOptions{&env, true});
  ASSERT_TRUE(pager.ok());
  for (int i = 0; i < 3; ++i) {
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("page " + std::to_string(i));
    (*pager)->MarkDirty(*id);
  }
  netmark::Status st = (*pager)->Flush();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(env.faults_injected(), 1u);
  EXPECT_EQ((*pager)->pages_written(), 2u);

  // The failed page stayed dirty: an unimpeded retry completes the flush.
  ASSERT_TRUE((*pager)->Flush().ok());
  EXPECT_EQ((*pager)->pages_written(), 3u);
  pager->reset();

  auto reopened = Pager::Open(path_);
  ASSERT_TRUE(reopened.ok());
  for (PageId i = 0; i < 3; ++i) {
    auto page = (*reopened)->Fetch(i);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->Get(0), "page " + std::to_string(i));
  }
}

TEST_F(PagerTest, ShortWriteIsCompletedNotSilentlyTruncated) {
  // The File layer must loop on partial writes: a short write mid-page (the
  // classic pre-ENOSPC symptom) is transparently completed, and the page
  // round-trips intact — checksum included.
  FaultSpec spec;
  spec.kind = FaultSpec::Kind::kWriteShort;
  spec.nth = 1;
  spec.sticky = false;
  FaultInjectingEnv env(spec);
  {
    auto pager = Pager::Open(path_, PagerOptions{&env, true});
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("short write victim");
    (*pager)->MarkDirty(*id);
    ASSERT_TRUE((*pager)->Flush().ok());
    EXPECT_EQ(env.faults_injected(), 1u);
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Fetch(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Get(0), "short write victim");
}

TEST_F(PagerTest, ChecksumRoundTripAcrossReopen) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("checksummed");
    (*pager)->MarkDirty(*id);
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  // The flushed bytes carry a valid trailer...
  std::ifstream f(path_, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), kPageSize);
  EXPECT_TRUE(PageVerifyChecksum(reinterpret_cast<const uint8_t*>(bytes.data())));
  // ...and a verifying reopen serves the page.
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Fetch(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Get(0), "checksummed");
  EXPECT_EQ((*pager)->quarantined_count(), 0u);
}

TEST_F(PagerTest, BitFlipQuarantinesPageOnRead) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    for (int i = 0; i < 2; ++i) {
      auto id = (*pager)->Allocate();
      ASSERT_TRUE(id.ok());
      auto page = (*pager)->Fetch(*id);
      page->Insert("page " + std::to_string(i));
      (*pager)->MarkDirty(*id);
    }
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  FlipByte(kPageSize + 100);  // one byte of page 1's record area

  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto bad = (*pager)->Fetch(1);
  EXPECT_TRUE(bad.status().IsDataLoss()) << bad.status().ToString();
  EXPECT_TRUE((*pager)->IsQuarantined(1));
  EXPECT_EQ((*pager)->quarantined_count(), 1u);
  EXPECT_EQ((*pager)->QuarantinedPages(), (std::vector<PageId>{1}));
  // Quarantine is sticky: repeat fetches fail fast, same status.
  EXPECT_TRUE((*pager)->Fetch(1).status().IsDataLoss());
  // The intact page is unaffected.
  auto good = (*pager)->Fetch(0);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->Get(0), "page 0");
}

TEST_F(PagerTest, VerifyOnDiskQuarantinesUncachedCorruption) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("scrub target");
    (*pager)->MarkDirty(*id);
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  FlipByte(300);

  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto verified = (*pager)->VerifyOnDisk(0);
  ASSERT_TRUE(verified.ok());
  EXPECT_FALSE(*verified);
  EXPECT_TRUE((*pager)->IsQuarantined(0));
  EXPECT_TRUE((*pager)->Fetch(0).status().IsDataLoss());
  // Re-probing an already-quarantined page reports true (known, contained).
  auto again = (*pager)->VerifyOnDisk(0);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again);
  // Out-of-range probes are an argument error, not corruption.
  EXPECT_TRUE((*pager)->VerifyOnDisk(99).status().IsInvalidArgument());
}

TEST_F(PagerTest, VerifyOnDiskSelfHealsCachedCorruption) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto id = (*pager)->Allocate();
  ASSERT_TRUE(id.ok());
  auto page = (*pager)->Fetch(*id);
  page->Insert("healable");
  (*pager)->MarkDirty(*id);
  ASSERT_TRUE((*pager)->Flush().ok());

  // Rot the on-disk copy while a clean copy is still cached: the scrubber
  // probe re-dirties the page instead of quarantining it...
  FlipByte(200);
  auto verified = (*pager)->VerifyOnDisk(0);
  ASSERT_TRUE(verified.ok());
  EXPECT_FALSE(*verified);
  EXPECT_FALSE((*pager)->IsQuarantined(0));

  // ...so the next flush rewrites good bytes over the rot.
  ASSERT_TRUE((*pager)->Flush().ok());
  auto healed = (*pager)->VerifyOnDisk(0);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(*healed);
}

TEST_F(PagerTest, V0PageIsServedUnverified) {
  {
    auto pager = Pager::Open(path_);
    ASSERT_TRUE(pager.ok());
    auto id = (*pager)->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = (*pager)->Fetch(*id);
    page->Insert("legacy");
    (*pager)->MarkDirty(*id);
    ASSERT_TRUE((*pager)->Flush().ok());
  }
  // Rewrite the page as v0: clear the version byte and the trailer. A legacy
  // page has no checksum, so a verifying pager must serve it as-is rather
  // than false-quarantine it.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    char zero[kPageTrailerSize] = {0};
    f.seekp(4);
    f.write(zero, 1);  // version byte -> v0
    f.seekp(static_cast<std::streamoff>(kPageSize - kPageTrailerSize));
    f.write(zero, kPageTrailerSize);  // trailer -> garbage (zeros)
  }
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  auto page = (*pager)->Fetch(0);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->Get(0), "legacy");
  EXPECT_EQ(PageVersion(page->raw()), 0);
  EXPECT_EQ((*pager)->quarantined_count(), 0u);
}

TEST(PageFormatTest, TryUpgradeV1ShiftsRecordsAndPreservesContent) {
  alignas(8) uint8_t buf[kPageSize] = {0};
  Page page(buf);
  page.Init();
  uint16_t a = page.Insert("first record");
  uint16_t b = page.Insert("second record");
  // Regress the page to v0: undo the trailer reservation the way a legacy
  // writer would have laid it out (records flush against kPageSize).
  std::memmove(buf + page.free_end() + kPageTrailerSize, buf + page.free_end(),
               kPageSize - kPageTrailerSize - page.free_end());
  for (uint16_t slot = 0; slot < page.slot_count(); ++slot) {
    size_t base = Page::kHeaderSize + static_cast<size_t>(slot) * Page::kSlotSize;
    uint16_t off;
    std::memcpy(&off, buf + base, 2);
    off = static_cast<uint16_t>(off + kPageTrailerSize);
    std::memcpy(buf + base, &off, 2);
  }
  uint16_t v0_end = static_cast<uint16_t>(page.free_end() + kPageTrailerSize);
  std::memcpy(buf + 2, &v0_end, 2);
  buf[4] = 0;
  ASSERT_EQ(page.Get(a), "first record");
  ASSERT_EQ(page.Get(b), "second record");
  ASSERT_FALSE(PageHasChecksum(buf));

  EXPECT_TRUE(PageTryUpgradeV1(buf));
  EXPECT_TRUE(PageHasChecksum(buf));
  EXPECT_EQ(page.Get(a), "first record");
  EXPECT_EQ(page.Get(b), "second record");
  PageStampChecksum(buf);
  EXPECT_TRUE(PageVerifyChecksum(buf));
  // Upgrading twice is a no-op.
  EXPECT_FALSE(PageTryUpgradeV1(buf));
}

TEST_F(PagerTest, TakeDirtySinceMarkTracksAllocationsAndDirties) {
  auto pager = Pager::Open(path_);
  ASSERT_TRUE(pager.ok());
  EXPECT_TRUE((*pager)->TakeDirtySinceMark().empty());
  auto a = (*pager)->Allocate();
  auto b = (*pager)->Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  (*pager)->MarkDirty(*a);
  std::vector<PageId> taken = (*pager)->TakeDirtySinceMark();
  EXPECT_EQ(taken, (std::vector<PageId>{*a, *b}));  // sorted, deduplicated
  // The call clears the mark; flushing does not repopulate it.
  EXPECT_TRUE((*pager)->TakeDirtySinceMark().empty());
  (*pager)->MarkDirty(*b);
  EXPECT_EQ((*pager)->TakeDirtySinceMark(), (std::vector<PageId>{*b}));
}

TEST(RowIdTest, PackUnpackRoundTrip) {
  for (RowId id : {RowId(0, 0), RowId(1, 2), RowId(123456, 65535),
                   RowId(0xFFFFFFFE, 1)}) {
    EXPECT_EQ(RowId::Unpack(id.Pack()), id);
  }
  EXPECT_FALSE(RowId::Unpack(RowId::kInvalidPacked).valid());
  EXPECT_EQ(kInvalidRowId.Pack(), RowId::kInvalidPacked);
  EXPECT_LT(RowId(1, 5), RowId(2, 0));
  EXPECT_LT(RowId(1, 5), RowId(1, 6));
}

}  // namespace
}  // namespace netmark::storage
