#include "federation/databank_config.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "federation/content_only_source.h"
#include "federation/local_source.h"
#include "xml/parser.h"

namespace netmark::federation {
namespace {

constexpr const char* kSample = R"(
[source:ames-store]
kind = local
path = /data/ames

[source:lessons]
kind = remote
host = 10.0.0.5
port = 8080
capabilities = content

[databank:anomalies]
sources = ames-store, lessons
)";

TEST(DatabankConfigTest, ParsesSourcesAndDatabanks) {
  auto config = ParseDatabankConfig(kSample);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config->sources.size(), 2u);
  EXPECT_EQ(config->sources[0].name, "ames-store");
  EXPECT_EQ(config->sources[0].kind, "local");
  EXPECT_EQ(config->sources[0].path, "/data/ames");
  EXPECT_TRUE(config->sources[0].capabilities.context_search);
  EXPECT_EQ(config->sources[1].name, "lessons");
  EXPECT_EQ(config->sources[1].kind, "remote");
  EXPECT_EQ(config->sources[1].host, "10.0.0.5");
  EXPECT_EQ(config->sources[1].port, 8080);
  EXPECT_FALSE(config->sources[1].capabilities.context_search);
  ASSERT_EQ(config->databanks.size(), 1u);
  EXPECT_EQ(config->databanks[0].name, "anomalies");
  EXPECT_EQ(config->databanks[0].sources.size(), 2u);
}

TEST(DatabankConfigTest, ParsesResilienceKnobs) {
  auto config = ParseDatabankConfig(R"(
[source:tuned]
kind = remote
host = 10.0.0.9
port = 8080
timeout_ms = 1500
max_retries = 4
breaker_failures = 3
breaker_cooldown_ms = 250

[source:defaults]
kind = remote
port = 8081
)");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config->sources.size(), 2u);
  const SourcePolicy& tuned = config->sources[0].policy;
  EXPECT_EQ(tuned.timeout_ms, 1500);
  EXPECT_EQ(tuned.max_retries, 4);
  ASSERT_TRUE(tuned.breaker.has_value());
  EXPECT_EQ(tuned.breaker->failure_threshold, 3);
  EXPECT_EQ(tuned.breaker->cooldown_ms, 250);
  // Absent knobs leave the router defaults in force.
  const SourcePolicy& defaults = config->sources[1].policy;
  EXPECT_EQ(defaults.timeout_ms, 0);
  EXPECT_EQ(defaults.max_retries, -1);
  EXPECT_FALSE(defaults.breaker.has_value());
}

TEST(DatabankConfigTest, RejectsBadResilienceKnobs) {
  const char* bad[] = {
      "[source:x]\nkind=local\npath=/p\ntimeout_ms=-5\n",
      "[source:x]\nkind=local\npath=/p\ntimeout_ms=soon\n",
      "[source:x]\nkind=local\npath=/p\nmax_retries=-1\n",
      "[source:x]\nkind=local\npath=/p\nbreaker_failures=-2\n",
      "[source:x]\nkind=local\npath=/p\nbreaker_cooldown_ms=never\n",
  };
  for (const char* text : bad) {
    EXPECT_TRUE(ParseDatabankConfig(text).status().IsParseError()) << text;
  }
}

TEST(DatabankConfigTest, ValidationErrors) {
  EXPECT_TRUE(ParseDatabankConfig("[source:x]\nkind=ftp\n").status().IsParseError());
  EXPECT_TRUE(ParseDatabankConfig("[source:x]\nkind=local\n").status().IsParseError());
  EXPECT_TRUE(
      ParseDatabankConfig("[source:x]\nkind=remote\nport=99999\n").status().IsParseError());
  EXPECT_TRUE(
      ParseDatabankConfig("[source:x]\nkind=remote\n").status().IsParseError());
  EXPECT_TRUE(ParseDatabankConfig("[databank:d]\nsources=ghost\n").status().IsParseError());
  EXPECT_TRUE(ParseDatabankConfig("[databank:d]\nsources=\n").status().IsParseError());
  EXPECT_TRUE(ParseDatabankConfig("[mystery:y]\nk=v\n").status().IsParseError());
  EXPECT_TRUE(ParseDatabankConfig(
                  "[source:x]\nkind=local\npath=/p\ncapabilities=psychic\n")
                  .status()
                  .IsParseError());
}

TEST(DatabankConfigTest, ApplyWithInjectedFactory) {
  auto config = ParseDatabankConfig(kSample);
  ASSERT_TRUE(config.ok());
  Router router;
  int local_count = 0, remote_count = 0;
  Status st = ApplyDatabankConfig(
      *config,
      [&](const SourceDecl& decl) -> Result<std::shared_ptr<Source>> {
        if (decl.kind == "local") ++local_count;
        if (decl.kind == "remote") ++remote_count;
        // Stand-in source carrying the declared name.
        return std::shared_ptr<Source>(
            std::make_shared<ContentOnlySource>(decl.name));
      },
      &router);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(local_count, 1);
  EXPECT_EQ(remote_count, 1);
  EXPECT_TRUE(router.HasDatabank("anomalies"));
  EXPECT_EQ(router.SourceNames().size(), 2u);
}

TEST(DatabankConfigTest, ApplyPropagatesFactoryErrors) {
  auto config = ParseDatabankConfig(kSample);
  ASSERT_TRUE(config.ok());
  Router router;
  Status st = ApplyDatabankConfig(
      *config,
      [](const SourceDecl&) -> Result<std::shared_ptr<Source>> {
        return Status::Unavailable("factory down");
      },
      &router);
  EXPECT_TRUE(st.IsUnavailable());
}

TEST(DatabankConfigTest, EndToEndWithRealLocalStore) {
  auto dir = TempDir::Make("dbcfg");
  ASSERT_TRUE(dir.ok());
  // Create a store with one document.
  {
    auto store = xmlstore::XmlStore::Open(dir->Sub("store").string());
    ASSERT_TRUE(store.ok());
    auto doc = xml::ParseXml("<d><h1>Budget</h1><p>configured store</p></d>");
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = "d.xml";
    ASSERT_TRUE((*store)->InsertDocument(*doc, info).ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  std::string config_text = "[source:disk]\nkind = local\npath = " +
                            dir->Sub("store").string() +
                            "\n[databank:solo]\nsources = disk\n";
  auto config = ParseDatabankConfig(config_text);
  ASSERT_TRUE(config.ok());
  Router router;
  Status st = ApplyDatabankConfig(
      *config,
      [](const SourceDecl& decl) -> Result<std::shared_ptr<Source>> {
        NETMARK_ASSIGN_OR_RETURN(std::shared_ptr<LocalStoreSource> source,
                                 LocalStoreSource::OpenOwned(decl.name, decl.path));
        return std::shared_ptr<Source>(std::move(source));
      },
      &router);
  ASSERT_TRUE(st.ok()) << st.ToString();
  query::XdbQuery q;
  q.context = "Budget";
  auto hits = router.Query("solo", q);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].heading, "Budget");
}

}  // namespace
}  // namespace netmark::federation
