#include "core/netmark.h"

#include "common/clock.h"
#include "common/temp_dir.h"
#include "federation/local_source.h"
#include "xml/serializer.h"

namespace netmark {

Result<std::unique_ptr<Netmark>> Netmark::Open(const NetmarkOptions& options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("NetmarkOptions.data_dir must be set");
  }
  std::unique_ptr<Netmark> nm(new Netmark(options));
  NETMARK_ASSIGN_OR_RETURN(nm->store_,
                           xmlstore::XmlStore::Open(options.data_dir, options.node_types,
                                                    options.storage));
  // One registry for the whole instance: store, router, service, executor
  // and daemon all re-home their metrics here, so GET /metrics sees
  // everything.
  nm->store_->BindMetrics(nm->metrics_.get());
  nm->router_.BindMetrics(nm->metrics_.get());
  nm->service_ = std::make_unique<server::NetmarkService>(nm->store_.get());
  nm->service_->set_router(&nm->router_);
  nm->service_->BindMetrics(nm->metrics_.get());
  nm->service_->set_slow_query_ms(options.slow_query_ms);
  nm->service_->ConfigureQueryCache(options.query_cache, options.plan_cache);
  nm->service_->ConfigureTracing(options.trace_store);
  return nm;
}

Netmark::~Netmark() {
  StopDaemon();
  StopServer();
}

Result<int64_t> Netmark::IngestFile(const std::filesystem::path& path) {
  NETMARK_ASSIGN_OR_RETURN(std::string content, ReadFile(path));
  return IngestContent(path.filename().string(), content);
}

Result<int64_t> Netmark::IngestContent(const std::string& file_name,
                                       std::string_view content) {
  NETMARK_ASSIGN_OR_RETURN(xml::Document doc, converters_.Convert(file_name, content));
  xmlstore::DocumentInfo info;
  info.file_name = file_name;
  info.file_date = WallSeconds();
  info.file_size = static_cast<int64_t>(content.size());
  return store_->InsertDocument(doc, info);
}

Result<std::vector<query::QueryHit>> Netmark::Query(const std::string& query_string) {
  NETMARK_ASSIGN_OR_RETURN(query::XdbQuery q, query::ParseXdbQuery(query_string));
  query::QueryExecutor executor(store_.get());
  executor.BindMetrics(metrics_.get());
  // The ad-hoc executor shares the service's caches (same store, so the
  // epoch-keyed result cache is valid here too).
  executor.set_result_cache(service_->result_cache());
  executor.set_plan_cache(service_->plan_cache());
  return executor.Execute(q);
}

Result<std::string> Netmark::QueryToXml(const std::string& query_string) {
  NETMARK_ASSIGN_OR_RETURN(query::XdbQuery q, query::ParseXdbQuery(query_string));
  query::QueryExecutor executor(store_.get());
  executor.BindMetrics(metrics_.get());
  executor.set_result_cache(service_->result_cache());
  executor.set_plan_cache(service_->plan_cache());
  // One snapshot spans execute + compose (same consistent view).
  xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
  NETMARK_ASSIGN_OR_RETURN(std::vector<query::QueryHit> hits,
                           executor.Execute(q, snapshot));
  NETMARK_ASSIGN_OR_RETURN(xml::Document results,
                           query::ComposeResults(*store_, q, hits));
  return xml::Serialize(results);
}

Result<std::string> Netmark::QueryAndTransform(const std::string& query_string,
                                               std::string_view stylesheet_text) {
  NETMARK_ASSIGN_OR_RETURN(query::XdbQuery q, query::ParseXdbQuery(query_string));
  query::QueryExecutor executor(store_.get());
  executor.BindMetrics(metrics_.get());
  executor.set_result_cache(service_->result_cache());
  executor.set_plan_cache(service_->plan_cache());
  xml::Document results;
  {
    // One snapshot spans execute + compose (same consistent view).
    xmlstore::XmlStore::ReadSnapshot snapshot = store_->BeginRead();
    NETMARK_ASSIGN_OR_RETURN(std::vector<query::QueryHit> hits,
                             executor.Execute(q, snapshot));
    NETMARK_ASSIGN_OR_RETURN(results, query::ComposeResults(*store_, q, hits));
  }
  NETMARK_ASSIGN_OR_RETURN(xml::Document transformed,
                           xslt::Transform(stylesheet_text, results));
  return xml::Serialize(transformed);
}

Result<std::string> Netmark::GetDocumentXml(int64_t doc_id) const {
  NETMARK_ASSIGN_OR_RETURN(xml::Document doc, store_->Reconstruct(doc_id));
  return xml::Serialize(doc);
}

Status Netmark::DeleteDocument(int64_t doc_id) { return store_->DeleteDocument(doc_id); }

Result<std::vector<xmlstore::DocRecord>> Netmark::ListDocuments() const {
  return store_->ListDocuments();
}

Status Netmark::RegisterSelfAsSource(const std::string& source_name) {
  auto source =
      std::make_shared<federation::LocalStoreSource>(source_name, store_.get());
  source->BindMetrics(metrics_.get());
  // The self-source wraps the same store, so sharing the service's
  // epoch-keyed result cache is safe (and lets /xdb and databank queries
  // feed one another's entries).
  source->set_caches(service_->result_cache(), service_->plan_cache());
  return router_.RegisterSource(std::move(source));
}

Status Netmark::RegisterSource(std::shared_ptr<federation::Source> source) {
  return router_.RegisterSource(std::move(source));
}

Status Netmark::DefineDatabank(const std::string& name,
                               std::vector<std::string> source_names) {
  return router_.DefineDatabank(name, std::move(source_names));
}

Result<std::vector<federation::FederatedHit>> Netmark::QueryDatabank(
    const std::string& databank, const std::string& query_string) {
  NETMARK_ASSIGN_OR_RETURN(query::XdbQuery q, query::ParseXdbQuery(query_string));
  return router_.Query(databank, q);
}

Result<federation::FederatedResult> Netmark::QueryDatabankFederated(
    const std::string& databank, const std::string& query_string) {
  NETMARK_ASSIGN_OR_RETURN(query::XdbQuery q, query::ParseXdbQuery(query_string));
  return router_.QueryFederated(databank, q);
}

Status Netmark::StartServer(uint16_t port) {
  if (http_server_ != nullptr) return Status::AlreadyExists("server already started");
  http_server_ = std::make_unique<server::HttpServer>(
      [this](const server::HttpRequest& req) { return service_->Handle(req); },
      options_.http_server);
  http_server_->BindMetrics(metrics_.get());
  Status st = http_server_->Start(port);
  if (!st.ok()) http_server_.reset();
  return st;
}

void Netmark::StopServer() {
  if (http_server_ != nullptr) {
    http_server_->Stop();
    http_server_.reset();
  }
}

uint16_t Netmark::server_port() const {
  return http_server_ == nullptr ? 0 : http_server_->port();
}

Status Netmark::RegisterStylesheet(const std::string& name, std::string_view text) {
  return service_->RegisterStylesheet(name, text);
}

Status Netmark::StartDaemon(const std::filesystem::path& drop_dir) {
  server::DaemonOptions opts;
  opts.drop_dir = drop_dir;
  return StartDaemon(std::move(opts));
}

Status Netmark::StartDaemon(server::DaemonOptions opts) {
  if (daemon_ != nullptr) return Status::AlreadyExists("daemon already started");
  if (opts.drop_dir.empty()) {
    return Status::InvalidArgument("DaemonOptions.drop_dir must be set");
  }
  daemon_ = std::make_unique<server::IngestionDaemon>(store_.get(), &converters_,
                                                      std::move(opts));
  daemon_->BindMetrics(metrics_.get());
  // Background sweeps share the service's trace ring, so GET /traces covers
  // ingestion as well as queries.
  daemon_->set_trace_store(service_->trace_store());
  service_->set_daemon(daemon_.get());
  Status st = daemon_->Start();
  if (!st.ok()) {
    service_->set_daemon(nullptr);
    daemon_.reset();
  }
  return st;
}

void Netmark::StopDaemon() {
  if (daemon_ != nullptr) {
    daemon_->Stop();
    if (service_ != nullptr) service_->set_daemon(nullptr);
    daemon_.reset();
  }
}

Result<int> Netmark::ProcessDropFolderOnce() {
  if (daemon_ == nullptr) {
    return Status::InvalidArgument("daemon not started (StartDaemon first)");
  }
  return daemon_->ProcessOnce();
}

}  // namespace netmark
