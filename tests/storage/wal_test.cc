#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/temp_dir.h"
#include "storage/recovery.h"

namespace netmark::storage {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("wal");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    wal_path_ = (dir_->path() / "wal.nmk").string();
  }

  /// A full page image filled with `fill`, stamped with `page_id` so every
  /// image is distinguishable.
  std::string Image(uint8_t fill, PageId page_id) {
    std::string image(kPageSize, static_cast<char>(fill));
    std::memcpy(image.data(), &page_id, sizeof(page_id));
    return image;
  }

  std::string FileBytes(const std::string& path) {
    auto content = ReadFile(path);
    EXPECT_TRUE(content.ok()) << content.status().ToString();
    return content.ok() ? *content : std::string();
  }

  std::unique_ptr<TempDir> dir_;
  std::string wal_path_;
};

TEST_F(WalTest, RoundTripCommittedTransactions) {
  {
    auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    std::string a = Image(0xAA, 0), b = Image(0xBB, 1);
    (*wal)->StagePageImage(1, "XML", 0, reinterpret_cast<const uint8_t*>(a.data()));
    (*wal)->StagePageImage(1, "DOC", 1, reinterpret_cast<const uint8_t*>(b.data()));
    ASSERT_TRUE((*wal)->AppendCommit(1).ok());
    std::string c = Image(0xCC, 2);
    (*wal)->StagePageImage(2, "XML", 2, reinterpret_cast<const uint8_t*>(c.data()));
    ASSERT_TRUE((*wal)->AppendCommit(2).ok());
  }
  auto scan = Wal::ReadRecords(wal_path_);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 5u);  // 3 images + 2 commits
  EXPECT_EQ(scan->records[0].type, WalRecordType::kPageImage);
  EXPECT_EQ(scan->records[0].table, "XML");
  EXPECT_EQ(scan->records[0].page_id, 0u);
  EXPECT_EQ(scan->records[0].image, Image(0xAA, 0));
  EXPECT_EQ(scan->records[2].type, WalRecordType::kCommit);
  EXPECT_EQ(scan->records[2].txn_id, 1u);
  EXPECT_EQ(scan->records[4].type, WalRecordType::kCommit);
  // LSNs strictly increase.
  for (size_t i = 1; i < scan->records.size(); ++i) {
    EXPECT_GT(scan->records[i].lsn, scan->records[i - 1].lsn);
  }
}

TEST_F(WalTest, CrcCorruptedTailIsTruncatedNotReplayed) {
  uint64_t clean_size = 0;
  {
    auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
    ASSERT_TRUE(wal.ok());
    std::string a = Image(0x11, 0);
    (*wal)->StagePageImage(1, "T", 0, reinterpret_cast<const uint8_t*>(a.data()));
    ASSERT_TRUE((*wal)->AppendCommit(1).ok());
    clean_size = (*wal)->size_bytes();
    std::string b = Image(0x22, 1);
    (*wal)->StagePageImage(2, "T", 1, reinterpret_cast<const uint8_t*>(b.data()));
    ASSERT_TRUE((*wal)->AppendCommit(2).ok());
  }
  // Flip one byte inside the second transaction's page image: its CRC no
  // longer matches, so the scan must stop at the first transaction.
  {
    std::fstream f(wal_path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(clean_size) + 200);
    char byte = 0x7F;
    f.write(&byte, 1);
  }
  auto scan = Wal::ReadRecords(wal_path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->valid_bytes, clean_size);
  ASSERT_EQ(scan->records.size(), 2u);  // txn 1 only
  EXPECT_EQ(scan->records[0].image, Image(0x11, 0));

  // Reopening truncates the torn tail away and appends after it.
  {
    auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->size_bytes(), clean_size);
    std::string c = Image(0x33, 2);
    (*wal)->StagePageImage(3, "T", 2, reinterpret_cast<const uint8_t*>(c.data()));
    ASSERT_TRUE((*wal)->AppendCommit(3).ok());
  }
  auto rescan = Wal::ReadRecords(wal_path_);
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan->torn_tail);
  ASSERT_EQ(rescan->records.size(), 4u);
  EXPECT_EQ(rescan->records[2].image, Image(0x33, 2));
  // The fresh record's LSN continues past the torn transaction's.
  EXPECT_GT(rescan->records[3].lsn, scan->records[1].lsn);
}

TEST_F(WalTest, ShortTailIsTruncated) {
  {
    auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
    ASSERT_TRUE(wal.ok());
    std::string a = Image(0x44, 0);
    (*wal)->StagePageImage(1, "T", 0, reinterpret_cast<const uint8_t*>(a.data()));
    ASSERT_TRUE((*wal)->AppendCommit(1).ok());
  }
  uint64_t full = fs::file_size(wal_path_);
  // Cut the file mid-commit-record: a crash during the append.
  fs::resize_file(wal_path_, full - 10);
  auto scan = Wal::ReadRecords(wal_path_);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->records[0].type, WalRecordType::kPageImage);
}

TEST_F(WalTest, DiscardStagedWritesNothing) {
  auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
  ASSERT_TRUE(wal.ok());
  std::string a = Image(0x55, 0);
  (*wal)->StagePageImage(1, "T", 0, reinterpret_cast<const uint8_t*>(a.data()));
  (*wal)->DiscardStaged();
  EXPECT_EQ((*wal)->size_bytes(), 0u);
  EXPECT_EQ(fs::file_size(wal_path_), 0u);
}

TEST_F(WalTest, LsnsKeepCountingAcrossTruncation) {
  auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
  ASSERT_TRUE(wal.ok());
  std::string a = Image(0x66, 0);
  (*wal)->StagePageImage(1, "T", 0, reinterpret_cast<const uint8_t*>(a.data()));
  ASSERT_TRUE((*wal)->AppendCommit(1).ok());
  uint64_t lsn_before = (*wal)->last_lsn();
  ASSERT_TRUE((*wal)->TruncateAll().ok());
  EXPECT_EQ((*wal)->size_bytes(), 0u);
  (*wal)->StagePageImage(2, "T", 0, reinterpret_cast<const uint8_t*>(a.data()));
  ASSERT_TRUE((*wal)->AppendCommit(2).ok());
  EXPECT_GT((*wal)->last_lsn(), lsn_before);
}

class RecoveryTest : public WalTest {
 protected:
  void SetUp() override {
    WalTest::SetUp();
    heap_path_ = (dir_->path() / "T.heap").string();
    // The heap exists but holds nothing: every committed byte lives in the
    // log only, exactly the state a crash before any checkpoint leaves.
    std::ofstream(heap_path_).close();
  }
  std::string heap_path_;
};

TEST_F(RecoveryTest, ReplaysCommittedSkipsUncommitted) {
  {
    auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
    ASSERT_TRUE(wal.ok());
    std::string p0 = Image(0xA0, 0), p1 = Image(0xA1, 1);
    (*wal)->StagePageImage(1, "T", 0, reinterpret_cast<const uint8_t*>(p0.data()));
    (*wal)->StagePageImage(1, "T", 1, reinterpret_cast<const uint8_t*>(p1.data()));
    ASSERT_TRUE((*wal)->AppendCommit(1).ok());
    std::string p2 = Image(0xA2, 2);
    (*wal)->StagePageImage(2, "T", 2, reinterpret_cast<const uint8_t*>(p2.data()));
    ASSERT_TRUE((*wal)->AppendCommit(2).ok());
  }
  // Drop txn 2's commit record from the tail: it becomes an uncommitted
  // transaction and must NOT be replayed.
  uint64_t full = fs::file_size(wal_path_);
  constexpr uint64_t kCommitRecordBytes = 8 + 17;  // frame header + body
  fs::resize_file(wal_path_, full - kCommitRecordBytes);

  auto stats = RecoverDatabase(dir_->str(), wal_path_);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->performed);
  EXPECT_EQ(stats->committed_txns, 1u);
  EXPECT_EQ(stats->uncommitted_txns, 1u);
  EXPECT_EQ(stats->pages_applied, 2u);

  std::string heap = FileBytes(heap_path_);
  ASSERT_EQ(heap.size(), 2 * kPageSize);  // txn 2's page 2 was never applied
  EXPECT_EQ(heap.substr(0, kPageSize), Image(0xA0, 0));
  EXPECT_EQ(heap.substr(kPageSize, kPageSize), Image(0xA1, 1));
  // Recovery truncates the log once the heap is durable.
  EXPECT_EQ(fs::file_size(wal_path_), 0u);
}

TEST_F(RecoveryTest, LaterImageOfSamePageWins) {
  {
    auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
    ASSERT_TRUE(wal.ok());
    std::string v1 = Image(0xB1, 0), v2 = Image(0xB2, 0);
    (*wal)->StagePageImage(1, "T", 0, reinterpret_cast<const uint8_t*>(v1.data()));
    ASSERT_TRUE((*wal)->AppendCommit(1).ok());
    (*wal)->StagePageImage(2, "T", 0, reinterpret_cast<const uint8_t*>(v2.data()));
    ASSERT_TRUE((*wal)->AppendCommit(2).ok());
  }
  auto stats = RecoverDatabase(dir_->str(), wal_path_);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(FileBytes(heap_path_), Image(0xB2, 0));
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  {
    auto wal = Wal::Open(wal_path_, WalFsyncPolicy::kNone);
    ASSERT_TRUE(wal.ok());
    std::string p0 = Image(0xC0, 0), p1 = Image(0xC1, 1);
    (*wal)->StagePageImage(1, "T", 0, reinterpret_cast<const uint8_t*>(p0.data()));
    (*wal)->StagePageImage(1, "T", 1, reinterpret_cast<const uint8_t*>(p1.data()));
    ASSERT_TRUE((*wal)->AppendCommit(1).ok());
  }
  std::string log_snapshot = FileBytes(wal_path_);

  ASSERT_TRUE(RecoverDatabase(dir_->str(), wal_path_).ok());
  std::string heap_after_first = FileBytes(heap_path_);

  // Crash-during-recovery model: the heap was already (partially or fully)
  // rewritten but the log survived. Replaying the identical log again must
  // converge to the same heap bytes.
  ASSERT_TRUE(WriteFileAtomic(wal_path_, log_snapshot).ok());
  auto second = RecoverDatabase(dir_->str(), wal_path_);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->performed);
  EXPECT_EQ(FileBytes(heap_path_), heap_after_first);

  // Third pass over the now-empty log: nothing to do.
  auto third = RecoverDatabase(dir_->str(), wal_path_);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->performed);
}

TEST_F(RecoveryTest, EmptyOrMissingLogIsANoOp) {
  auto stats = RecoverDatabase(dir_->str(), (dir_->path() / "nope.nmk").string());
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->performed);
}

}  // namespace
}  // namespace netmark::storage
