// Robustness: malformed/truncated HTTP input must fail cleanly, and the
// server must survive hostile clients and concurrent load.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "common/env.h"
#include "common/rng.h"
#include "common/temp_dir.h"
#include "core/netmark.h"
#include "server/http_client.h"
#include "server/http_server.h"

namespace netmark::server {
namespace {

TEST(HttpParserRobustnessTest, TruncationsNeverCrash) {
  const std::string valid =
      "PUT /docs/x.txt?a=b HTTP/1.1\r\n"
      "Host: h\r\nContent-Length: 4\r\n\r\nbody";
  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    auto result = ParseRequest(valid.substr(0, cut));
    // Either a clean error or (once the head is complete) a parse; body may
    // legitimately be shorter than Content-Length at this layer.
    if (cut < valid.find("\r\n\r\n") + 4) {
      EXPECT_FALSE(result.ok()) << "cut at " << cut;
    }
  }
}

TEST(HttpParserRobustnessTest, RandomByteCorruptionNeverCrashes) {
  const std::string valid =
      "GET /xdb?context=Budget HTTP/1.1\r\nHost: h\r\n\r\n";
  netmark::Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = valid;
    size_t flips = 1 + rng.Uniform(4);
    for (size_t f = 0; f < flips; ++f) {
      corrupted[rng.Uniform(corrupted.size())] =
          static_cast<char>(rng.Uniform(256));
    }
    auto result = ParseRequest(corrupted);  // must not crash; outcome may vary
    if (result.ok()) {
      EXPECT_FALSE(result->method.empty());
    }
  }
}

TEST(HttpServerRobustnessTest, GarbageConnectionsDoNotKillTheServer) {
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("ok"); });
  ASSERT_TRUE(server.Start().ok());
  // Throw raw garbage at the socket, then confirm normal service continues.
  for (int i = 0; i < 5; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char* junk = i % 2 == 0 ? "NOT HTTP AT ALL\r\n\r\n" : "\x00\xff\xfe";
    (void)::send(fd, junk, strlen(junk), MSG_NOSIGNAL);
    ::close(fd);  // also exercises clients hanging up early
  }
  HttpClient client("127.0.0.1", server.port());
  auto resp = client.Get("/alive");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "ok");
}

TEST(HttpServerRobustnessTest, ConcurrentClientsAllServed) {
  std::atomic<int> handled{0};
  HttpServer server([&](const HttpRequest& req) {
    handled.fetch_add(1);
    return HttpResponse::Ok(std::string(req.query));
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kRequestsEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        std::string tag = "t=" + std::to_string(t) + "&i=" + std::to_string(i);
        auto resp = client.Get("/q?" + tag);
        if (!resp.ok() || resp->status != 200 || resp->body != tag) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(handled.load(), kThreads * kRequestsEach);
}

// A store whose WAL fsync fails must stop acknowledging writes (fail-stop)
// while the HTTP surface keeps serving reads and reports the degradation.
TEST(DegradedModeServingTest, FsyncFailureKeepsReadsServingAndReportsDegraded) {
  auto dir = netmark::TempDir::Make("degraded_http");
  ASSERT_TRUE(dir.ok());
  const std::string data_dir = dir->Sub("data").string();

  // Seed one document with a healthy store, then close it.
  {
    NetmarkOptions options;
    options.data_dir = data_dir;
    auto nm = Netmark::Open(options);
    ASSERT_TRUE(nm.ok());
    ASSERT_TRUE((*nm)->IngestContent("memo.txt", "OVERVIEW\nall good\n").ok());
    ASSERT_TRUE((*nm)->store()->Flush().ok());
  }

  // Reopen with every fsync failing from the start.
  netmark::FaultSpec spec;
  spec.kind = netmark::FaultSpec::Kind::kFsyncFail;
  spec.nth = 1;
  spec.sticky = true;
  netmark::FaultInjectingEnv env(spec);
  NetmarkOptions options;
  options.data_dir = data_dir;
  options.storage.env = &env;
  options.storage.wal_fsync = storage::WalFsyncPolicy::kCommit;
  auto nm = Netmark::Open(options);
  ASSERT_TRUE(nm.ok());

  auto request = [](std::string method, std::string path, std::string body) {
    HttpRequest req;
    req.method = std::move(method);
    req.path = std::move(path);
    req.target = req.path;
    req.body = std::move(body);
    return req;
  };

  // First mutation: the fsync fault surfaces as a hard error, and — crucially
  // — the document is NOT acknowledged.
  HttpResponse put1 =
      (*nm)->service()->Handle(request("PUT", "/docs/new.txt", "BUDGET\nQ3\n"));
  EXPECT_GE(put1.status, 500) << put1.body;
  EXPECT_TRUE((*nm)->store()->degraded());

  // Later mutations see the latched read-only mode: 503 with a retry hint.
  HttpResponse put2 =
      (*nm)->service()->Handle(request("PUT", "/docs/more.txt", "NOTES\nx\n"));
  EXPECT_EQ(put2.status, 503) << put2.body;
  EXPECT_EQ(put2.Header("Retry-After"), "10");
  EXPECT_NE(put2.body.find("read-only"), std::string::npos) << put2.body;

  // Reads keep serving the acked corpus.
  HttpRequest query = request("GET", "/xdb", "");
  query.query = "context=Overview";
  query.target = "/xdb?context=Overview";
  HttpResponse xdb = (*nm)->service()->Handle(query);
  EXPECT_EQ(xdb.status, 200) << xdb.body;
  EXPECT_NE(xdb.body.find("all good"), std::string::npos);

  // /healthz reports the degraded latch and its reason.
  HttpResponse health = (*nm)->service()->Handle(request("GET", "/healthz", ""));
  EXPECT_EQ(health.status, 200) << health.body;
  EXPECT_NE(health.body.find("\"status\":\"degraded\""), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"degraded_reason\""), std::string::npos);
  EXPECT_NE(health.body.find("injected"), std::string::npos) << health.body;
}

}  // namespace
}  // namespace netmark::server
