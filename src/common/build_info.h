// Build identity: version + git sha baked in at configure time, exported as
// the netmark_build_info metric and a /healthz block so scrapes, traces,
// and log lines can be correlated with the running binary.

#ifndef NETMARK_COMMON_BUILD_INFO_H_
#define NETMARK_COMMON_BUILD_INFO_H_

namespace netmark {

/// Project version (CMake PROJECT_VERSION), e.g. "1.0.0".
const char* BuildVersion();

/// Short git sha of the source tree at configure time; "unknown" outside a
/// git checkout.
const char* BuildGitSha();

}  // namespace netmark

#endif  // NETMARK_COMMON_BUILD_INFO_H_
