// Leveled + structured logging: sink capture, ISO-8601 timestamps, level
// filtering, NETMARK_SLOG key=value quoting, and ParseLogLevel.

#include "common/logging.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace netmark {
namespace {

/// Captures log lines for the duration of a test and restores stderr +
/// the previous level afterwards.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_level_ = Logger::Instance().level();
    Logger::Instance().SetLevel(LogLevel::kDebug);
    Logger::Instance().SetSink(
        [this](const std::string& line) { lines_.push_back(line); });
  }
  void TearDown() override {
    Logger::Instance().SetSink(nullptr);
    Logger::Instance().SetLevel(saved_level_);
  }

  std::vector<std::string> lines_;
  LogLevel saved_level_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, StreamStyleReachesSink) {
  NETMARK_LOG(Info) << "hello " << 42;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("[INFO]"), std::string::npos);
  EXPECT_NE(lines_[0].find("hello 42"), std::string::npos);
  EXPECT_NE(lines_[0].find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, LevelFiltersLowSeverity) {
  Logger::Instance().SetLevel(LogLevel::kWarning);
  NETMARK_LOG(Debug) << "dropped";
  NETMARK_LOG(Info) << "dropped";
  NETMARK_LOG(Warning) << "kept";
  NETMARK_LOG(Error) << "kept";
  ASSERT_EQ(lines_.size(), 2u);
  Logger::Instance().SetLevel(LogLevel::kOff);
  NETMARK_LOG(Error) << "dropped";
  EXPECT_EQ(lines_.size(), 2u);
}

TEST_F(LoggingTest, EveryLineCarriesIso8601UtcTimestamp) {
  NETMARK_LOG(Info) << "stamped";
  ASSERT_EQ(lines_.size(), 1u);
  // "2026-08-06T12:00:00.000Z ..." — fixed-width prefix, millisecond
  // precision, Zulu suffix.
  const std::string& line = lines_[0];
  ASSERT_GE(line.size(), 24u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[7], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[13], ':');
  EXPECT_EQ(line[16], ':');
  EXPECT_EQ(line[19], '.');
  EXPECT_EQ(line[23], 'Z');
}

TEST(FormatIso8601Test, KnownInstant) {
  // 2026-08-06T00:00:00Z == 1785974400 seconds since epoch.
  EXPECT_EQ(FormatIso8601Millis(1785974400LL * 1000000 + 123456),
            "2026-08-06T00:00:00.123Z");
  EXPECT_EQ(FormatIso8601Millis(0), "1970-01-01T00:00:00.000Z");
}

TEST_F(LoggingTest, StructuredFieldsAndQuoting) {
  NETMARK_SLOG(Warning, "breaker_transition")
      .Field("source", "archive")
      .Field("cooldown_ms", 5000)
      .Field("detail", "has spaces")
      .Field("query", "context=a");
  ASSERT_EQ(lines_.size(), 1u);
  const std::string& line = lines_[0];
  EXPECT_NE(line.find("event=breaker_transition"), std::string::npos);
  EXPECT_NE(line.find("source=archive"), std::string::npos);
  EXPECT_NE(line.find("cooldown_ms=5000"), std::string::npos);
  // Spaces and '=' force double quotes so the record stays one-line parseable.
  EXPECT_NE(line.find("detail=\"has spaces\""), std::string::npos);
  EXPECT_NE(line.find("query=\"context=a\""), std::string::npos);
}

TEST_F(LoggingTest, StructuredQuotesEscapeInnerQuotes) {
  NETMARK_SLOG(Warning, "test").Field("msg", "say \"hi\"");
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_NE(lines_[0].find("msg=\"say \\\"hi\\\"\""), std::string::npos);
}

TEST_F(LoggingTest, StructuredRespectsLevel) {
  Logger::Instance().SetLevel(LogLevel::kError);
  NETMARK_SLOG(Warning, "dropped").Field("k", "v");
  EXPECT_TRUE(lines_.empty());
}

TEST(ParseLogLevelTest, AllSpellings) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning", LogLevel::kOff), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kOff), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kError), LogLevel::kError);
}

}  // namespace
}  // namespace netmark
