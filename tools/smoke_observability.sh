#!/usr/bin/env bash
# Observability smoke test: start a real server, ingest through the drop
# folder, run a traced federated-path query, then assert that /metrics and
# /healthz answer well-formed with nonzero counters. Exercises the full
# wiring (CLI -> facade -> registry -> exposition) that unit tests stub.
#
# Also covers distributed tracing end to end: a second instance is started
# as a remote databank source, and the script asserts that one trace id
# spans both processes (X-Netmark-Trace-Id on the mediator == a retained
# trace on the remote), that /traces serves the stitched tree, that
# /metrics carries at least one histogram exemplar, and that the
# `netmark traces` CLI renders the flame view.
#
# Both instances run with an explicit `[server] reactor = epoll` config, so
# the whole mediator+remote topology is exercised through the epoll reactor
# (the INI knob path included), and the scrape asserts the reactor gauges
# (netmark_http_server_open_connections, _epoll_wakeups_total) are exported.
#
# Usage: tools/smoke_observability.sh [path/to/netmark] [port]
set -euo pipefail

BIN="${1:-./build/tools/netmark}"
PORT="${2:-18099}"
REMOTE_PORT="$((PORT + 1))"
BASE="http://127.0.0.1:${PORT}"
REMOTE_BASE="http://127.0.0.1:${REMOTE_PORT}"
WORK="$(mktemp -d)"
SERVER_PID=""
REMOTE_PID=""

cleanup() {
  [[ -n "${SERVER_PID}" ]] && kill "${SERVER_PID}" 2>/dev/null || true
  [[ -n "${SERVER_PID}" ]] && wait "${SERVER_PID}" 2>/dev/null || true
  [[ -n "${REMOTE_PID}" ]] && kill "${REMOTE_PID}" 2>/dev/null || true
  [[ -n "${REMOTE_PID}" ]] && wait "${REMOTE_PID}" 2>/dev/null || true
  rm -rf "${WORK}"
}
trap cleanup EXIT

fail() {
  echo "SMOKE FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "${WORK}/serve.log" >&2 || true
  echo "--- remote log ---" >&2
  cat "${WORK}/remote.log" >&2 || true
  exit 1
}

mkdir -p "${WORK}/data" "${WORK}/drop" "${WORK}/remote-data" "${WORK}/remote-drop"
printf 'OVERVIEW\nsmoke engine nominal\n' > "${WORK}/drop/memo.txt"
printf 'OVERVIEW\nremote thruster anomaly\n' > "${WORK}/remote-drop/anomaly.txt"

# Pin the connection model explicitly so this smoke keeps covering the
# epoll reactor (INI plumbing included) even if the default ever changes.
cat > "${WORK}/server.ini" <<EOF
[server]
reactor = epoll
EOF

# Second instance: the remote half of the federated hop.
"${BIN}" serve --data "${WORK}/remote-data" --port "${REMOTE_PORT}" \
  --drop "${WORK}/remote-drop" --config "${WORK}/server.ini" \
  > "${WORK}/remote.log" 2>&1 &
REMOTE_PID=$!

# The mediator reaches it through a declared databank.
cat > "${WORK}/databanks.ini" <<EOF
[source:smoke-remote]
kind = remote
host = 127.0.0.1
port = ${REMOTE_PORT}

[databank:smoke]
sources = smoke-remote
EOF

"${BIN}" serve --data "${WORK}/data" --port "${PORT}" --drop "${WORK}/drop" \
  --databanks "${WORK}/databanks.ini" --config "${WORK}/server.ini" \
  > "${WORK}/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  if curl -fsS "${REMOTE_BASE}/healthz" 2>/dev/null | grep -q '"documents":1'; then
    break
  fi
  sleep 0.2
done

# Wait for the server to come up AND the drop sweep to ingest the memo.
up=""
for _ in $(seq 1 100); do
  if curl -fsS "${BASE}/healthz" > "${WORK}/healthz.json" 2>/dev/null &&
     grep -q '"documents":1' "${WORK}/healthz.json"; then
    up=1
    break
  fi
  sleep 0.2
done
[[ -n "${up}" ]] || fail "server did not ingest the dropped file in time"

echo "== /healthz =="
cat "${WORK}/healthz.json"; echo
grep -q '"status":"ok"' "${WORK}/healthz.json" || fail "healthz status not ok"
grep -q '"running":true' "${WORK}/healthz.json" || fail "daemon not reported running"
grep -q '"inserted":1' "${WORK}/healthz.json" || fail "daemon inserted count wrong"
# MVCC posture (docs/mvcc.md): the ingested document committed, so the epoch
# must be nonzero, and the version-lifecycle block must be present.
grep -q '"mvcc":{"epoch":[1-9]' "${WORK}/healthz.json" ||
  fail "healthz storage.mvcc missing or epoch still zero after ingest"
grep -q '"versions_retained":' "${WORK}/healthz.json" ||
  fail "healthz mvcc missing versions_retained"
grep -q '"oldest_pinned_epoch":' "${WORK}/healthz.json" ||
  fail "healthz mvcc missing oldest_pinned_epoch"
grep -q '"gc_reclaimed_total":' "${WORK}/healthz.json" ||
  fail "healthz mvcc missing gc_reclaimed_total"

echo "== traced query =="
curl -fsSD "${WORK}/query.headers" "${BASE}/xdb?context=Overview&trace=1" \
  > "${WORK}/query.xml" || fail "traced query failed"
cat "${WORK}/query.xml"; echo
grep -q 'smoke engine nominal' "${WORK}/query.xml" || fail "query missing hit content"
grep -q '<trace total_us=' "${WORK}/query.xml" || fail "trace=1 did not append span tree"
grep -q 'name="xdb"' "${WORK}/query.xml" || fail "trace missing root span"
grep -qi '^x-netmark-trace-id: [0-9a-f]\{32\}' "${WORK}/query.headers" ||
  fail "response missing X-Netmark-Trace-Id header"

echo "== cross-hop trace =="
curl -fsSD "${WORK}/fed.headers" \
  "${BASE}/xdb?content=thruster&databank=smoke" > "${WORK}/fed.xml" ||
  fail "federated query failed"
grep -q 'doc="anomaly.txt".*source="smoke-remote"' "${WORK}/fed.xml" ||
  fail "federated query missing remote hit"
TRACE_ID="$(grep -i '^x-netmark-trace-id:' "${WORK}/fed.headers" |
  tr -d '\r' | awk '{print $2}')"
[[ -n "${TRACE_ID}" ]] || fail "federated response missing trace id header"

# The stitched tree on the mediator: remote spans grafted under source:*.
curl -fsS "${BASE}/traces?id=${TRACE_ID}" > "${WORK}/trace.json" ||
  fail "mediator /traces?id= failed"
grep -q '"name":"source:smoke-remote"' "${WORK}/trace.json" ||
  fail "stitched trace missing source span"
grep -q '"remote":true' "${WORK}/trace.json" ||
  fail "stitched trace carries no remote spans"

# Cross-process propagation: the SAME trace id is retained on the remote
# (it adopted the inbound traceparent).
curl -fsS "${REMOTE_BASE}/traces" > "${WORK}/remote-traces.json" ||
  fail "remote /traces failed"
grep -q "${TRACE_ID}" "${WORK}/remote-traces.json" ||
  fail "remote trace store does not hold the mediator's trace id"

echo "== /traces =="
curl -fsS "${BASE}/traces" > "${WORK}/traces.json" || fail "/traces failed"
grep -q '"traces":\[{' "${WORK}/traces.json" || fail "/traces listing is empty"
grep -q '"root":"xdb"' "${WORK}/traces.json" || fail "/traces missing xdb root"

echo "== CLI flame view =="
"${BIN}" traces --port "${PORT}" --id "${TRACE_ID}" > "${WORK}/flame.txt" ||
  fail "netmark traces CLI failed"
cat "${WORK}/flame.txt"
grep -q "trace ${TRACE_ID}" "${WORK}/flame.txt" || fail "flame view missing id"
grep -q 'source:smoke-remote' "${WORK}/flame.txt" ||
  fail "flame view missing source span"
grep -q '\[remote\]' "${WORK}/flame.txt" || fail "flame view missing remote tag"

echo "== /metrics =="
curl -fsSD "${WORK}/metrics.headers" "${BASE}/metrics" > "${WORK}/metrics.txt" ||
  fail "metrics scrape failed"
grep -qi 'content-type: text/plain; version=0.0.4' "${WORK}/metrics.headers" ||
  fail "metrics content type wrong"
# Exposition shape: TYPE lines + the counters this session must have moved.
grep -q '^# TYPE netmark_http_requests_total counter' "${WORK}/metrics.txt" ||
  fail "missing http request counter TYPE line"
grep -q 'netmark_http_requests_total{route="/xdb"} 2' "${WORK}/metrics.txt" ||
  fail "xdb route counter not 2 (traced + federated query)"
grep -q 'netmark_ingest_inserted_total 1' "${WORK}/metrics.txt" ||
  fail "ingest counter not on the instance registry"
grep -q '^# TYPE netmark_query_latency_micros histogram' "${WORK}/metrics.txt" ||
  fail "missing query latency histogram"
grep -q 'netmark_query_latency_micros_count 2' "${WORK}/metrics.txt" ||
  fail "query latency histogram did not observe both queries"
grep -q 'netmark_ingest_prepare_micros_bucket{le="+Inf"} 1' "${WORK}/metrics.txt" ||
  fail "ingestion-stage histogram missing"
grep -q '^netmark_build_info{' "${WORK}/metrics.txt" || fail "missing build info gauge"
grep -q 'netmark_traces_retained_total' "${WORK}/metrics.txt" ||
  fail "missing trace retention counter"
# Reactor observability: the open-connections gauge must be exported and
# count this scrape's own socket; the wakeup counter must have moved.
grep -q '^# TYPE netmark_http_server_open_connections gauge' \
  "${WORK}/metrics.txt" || fail "missing open-connections gauge TYPE line"
grep -q '^netmark_http_server_open_connections [1-9]' "${WORK}/metrics.txt" ||
  fail "open-connections gauge not exported or zero during a live scrape"
grep -q '^netmark_http_server_epoll_wakeups_total [1-9]' "${WORK}/metrics.txt" ||
  fail "epoll wakeup counter not exported or zero under reactor=epoll"
# MVCC gauges (docs/mvcc.md): version retention, GC watermark, reclaim work.
grep -q '^netmark_mvcc_versions_retained ' "${WORK}/metrics.txt" ||
  fail "missing netmark_mvcc_versions_retained gauge"
grep -q '^netmark_mvcc_oldest_pinned_epoch [1-9]' "${WORK}/metrics.txt" ||
  fail "mvcc oldest-pinned-epoch gauge missing or zero after ingest"
grep -q '^# TYPE netmark_mvcc_gc_reclaimed_total counter' "${WORK}/metrics.txt" ||
  fail "missing mvcc gc reclaim counter TYPE line"
# Exemplar: at least one latency bucket links to a retained trace id.
grep -q '_bucket{le="[^"]*"} [0-9]* # {trace_id="[0-9a-f]\{32\}"}' \
  "${WORK}/metrics.txt" || fail "no histogram exemplar on /metrics"

echo "SMOKE PASS"
