// XDB Query: NETMARK's query language (paper §2.1.3).
//
// "context and content search specifications are appended to a URL that is
// sent to NETMARK. In this URL we may also specify an XSLT stylesheet which
// specifies how the results are to be formatted and composed into a new
// document."
//
// Example query strings:
//   Context=Introduction
//   Content=Shuttle
//   Context=Technology+Gap&Content=Shrinking
//   Context=Budget&xslt=report.xsl&limit=20

#ifndef NETMARK_QUERY_XDB_QUERY_H_
#define NETMARK_QUERY_XDB_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace netmark::query {

/// \brief Parsed XDB query.
struct XdbQuery {
  /// Context search key: matches section headings. Empty = no context clause.
  std::string context;
  /// Content search key: matches body text. Empty = no content clause.
  std::string content;
  /// XPath expression evaluated over reconstructed documents — the paper's
  /// "full-fledged XML querying" capability (§2.1.5). May be combined with a
  /// content key (the content search pre-selects candidate documents).
  std::string xpath;
  /// Restrict to one document id (0 = all documents).
  int64_t doc_id = 0;
  /// Name of an XSLT stylesheet for result composition ("" = raw results).
  std::string xslt;
  /// Maximum hits to return (0 = unlimited).
  size_t limit = 0;
  /// Per-query deadline budget in milliseconds (0 = server default). Honoured
  /// by the databank fan-out path and propagated to remote sources, which
  /// receive only the budget remaining when they are called.
  int64_t timeout_ms = 0;

  bool has_context() const { return !context.empty(); }
  bool has_content() const { return !content.empty(); }
  bool has_xpath() const { return !xpath.empty(); }
  bool empty() const { return !has_context() && !has_content() && !has_xpath(); }

  /// Re-encodes the query as a URL query string (canonical ordering,
  /// lower-case keys, `+` for spaces). Stable under re-parsing —
  /// ParseXdbQuery(q.ToQueryString()) == q — which is what makes it the
  /// result-cache key: any two spellings of the same query canonicalize to
  /// one string (see docs/query_cache.md).
  std::string ToQueryString() const;
};

/// \brief Parses an URL query string ("Context=...&Content=...").
/// Keys are case-insensitive; values are URL-decoded. Unknown keys are
/// ignored (forward compatibility), malformed escapes are errors.
netmark::Result<XdbQuery> ParseXdbQuery(std::string_view query_string);

}  // namespace netmark::query

#endif  // NETMARK_QUERY_XDB_QUERY_H_
