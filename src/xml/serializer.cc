#include "xml/serializer.h"

#include "xml/entities.h"

namespace netmark::xml {

namespace {

bool HasElementChildrenOnlyLayout(const Document& doc, NodeId node) {
  // Pretty layout (children on their own lines) only applies when the node
  // has no text/cdata children, so mixed content is preserved byte-exactly.
  bool has_child = false;
  for (NodeId c = doc.first_child(node); c != kInvalidNode; c = doc.next_sibling(c)) {
    has_child = true;
    if (doc.kind(c) == NodeKind::kText || doc.kind(c) == NodeKind::kCData) return false;
  }
  return has_child;
}

void SerializeNode(const Document& doc, NodeId node, const SerializeOptions& opts,
                   int depth, std::string* out) {
  auto indent = [&](int d) {
    if (opts.pretty) out->append(static_cast<size_t>(d) * 2, ' ');
  };
  switch (doc.kind(node)) {
    case NodeKind::kDocument: {
      if (opts.declaration) {
        *out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
        if (opts.pretty) *out += '\n';
      }
      bool first = true;
      for (NodeId c = doc.first_child(node); c != kInvalidNode;
           c = doc.next_sibling(c)) {
        if (!first && opts.pretty) *out += '\n';
        first = false;
        SerializeNode(doc, c, opts, depth, out);
      }
      break;
    }
    case NodeKind::kElement: {
      indent(depth);
      *out += '<';
      *out += doc.name(node);
      for (const Attribute& a : doc.attributes(node)) {
        *out += ' ';
        *out += a.name;
        *out += "=\"";
        *out += EscapeAttribute(a.value);
        *out += '"';
      }
      if (doc.first_child(node) == kInvalidNode) {
        *out += "/>";
        break;
      }
      *out += '>';
      bool block = opts.pretty && HasElementChildrenOnlyLayout(doc, node);
      for (NodeId c = doc.first_child(node); c != kInvalidNode;
           c = doc.next_sibling(c)) {
        if (block) *out += '\n';
        SerializeNode(doc, c, opts, block ? depth + 1 : 0, out);
      }
      if (block) {
        *out += '\n';
        indent(depth);
      }
      *out += "</";
      *out += doc.name(node);
      *out += '>';
      break;
    }
    case NodeKind::kText:
      indent(depth);
      *out += EscapeText(doc.data(node));
      break;
    case NodeKind::kCData:
      indent(depth);
      *out += "<![CDATA[";
      *out += doc.data(node);
      *out += "]]>";
      break;
    case NodeKind::kComment:
      indent(depth);
      *out += "<!--";
      *out += doc.data(node);
      *out += "-->";
      break;
    case NodeKind::kProcessingInstruction:
      indent(depth);
      *out += "<?";
      *out += doc.name(node);
      if (!doc.data(node).empty()) {
        *out += ' ';
        *out += doc.data(node);
      }
      *out += "?>";
      break;
  }
}

}  // namespace

std::string Serialize(const Document& doc, NodeId node, const SerializeOptions& options) {
  std::string out;
  SerializeNode(doc, node, options, 0, &out);
  return out;
}

}  // namespace netmark::xml
