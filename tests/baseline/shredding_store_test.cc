#include "baseline/shredding_store.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::baseline {
namespace {

xmlstore::DocumentInfo Info(const std::string& name) {
  xmlstore::DocumentInfo info;
  info.file_name = name;
  return info;
}

class ShreddingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("shred");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = ShreddingStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
  }

  int64_t Insert(const char* markup, const std::string& name = "d.xml") {
    auto doc = xml::ParseXml(markup);
    EXPECT_TRUE(doc.ok());
    auto id = store_->InsertDocument(*doc, Info(name));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return id.ok() ? *id : -1;
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<ShreddingStore> store_;
};

TEST_F(ShreddingStoreTest, SanitizeTagNames) {
  EXPECT_EQ(SanitizeTag("memo"), "memo");
  EXPECT_EQ(SanitizeTag("netmark:meta"), "netmark_meta");
  EXPECT_EQ(SanitizeTag("H1"), "h1");
  EXPECT_EQ(SanitizeTag("#text"), "_text");
  EXPECT_EQ(SanitizeTag(""), "tag");
}

TEST_F(ShreddingStoreTest, FirstDocumentOfTypeTriggersDdl) {
  uint64_t before = store_->ddl_statements();
  Insert("<memo><to>team</to><body>hello</body></memo>");
  uint64_t after_first = store_->ddl_statements();
  // Tables for memo, to, body, #text (+ indexes) were created.
  EXPECT_GT(after_first, before);
  // A second structurally identical memo costs no DDL.
  Insert("<memo><to>others</to><body>again</body></memo>");
  EXPECT_EQ(store_->ddl_statements(), after_first);
}

TEST_F(ShreddingStoreTest, NewTagWithinKnownTypeCostsMoreDdl) {
  Insert("<memo><to>x</to></memo>");
  uint64_t before = store_->ddl_statements();
  Insert("<memo><to>y</to><cc>z</cc></memo>");  // <cc> is new
  EXPECT_GT(store_->ddl_statements(), before);
}

TEST_F(ShreddingStoreTest, EachNewTypeCostsDdl) {
  Insert("<memo><body>a</body></memo>");
  uint64_t after_memo = store_->ddl_statements();
  Insert("<report><body>b</body></report>");  // same tags, different type!
  EXPECT_GT(store_->ddl_statements(), after_memo);
  EXPECT_GE(store_->table_count(), 4u);
}

TEST_F(ShreddingStoreTest, ReconstructMatchesOriginal) {
  const char* markup =
      "<memo priority=\"high\"><to>team</to>"
      "<body>status is <b>green</b> today</body></memo>";
  auto original = xml::ParseXml(markup);
  ASSERT_TRUE(original.ok());
  int64_t id = Insert(markup);
  auto rebuilt = store_->Reconstruct(id);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_TRUE(xml::Document::SubtreeEquals(*original, original->root(), *rebuilt,
                                           rebuilt->root()))
      << xml::Serialize(*rebuilt);
}

TEST_F(ShreddingStoreTest, MultipleDocumentsIsolated) {
  int64_t a = Insert("<memo><body>first</body></memo>");
  int64_t b = Insert("<memo><body>second</body></memo>");
  auto ra = store_->Reconstruct(a);
  auto rb = store_->Reconstruct(b);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->TextContent(ra->root()), "first");
  EXPECT_EQ(rb->TextContent(rb->root()), "second");
  EXPECT_EQ(store_->document_count(), 2u);
}

TEST_F(ShreddingStoreTest, ReconstructMissingDocFails) {
  EXPECT_TRUE(store_->Reconstruct(42).status().IsNotFound());
}

TEST_F(ShreddingStoreTest, PersistsAcrossReopen) {
  int64_t id = Insert("<memo><body>persist</body></memo>");
  ASSERT_TRUE(store_->database()->Flush().ok());
  uint64_t ddl = store_->ddl_statements();
  store_.reset();
  auto reopened = ShreddingStore::Open(dir_->str());
  ASSERT_TRUE(reopened.ok());
  store_ = std::move(*reopened);
  EXPECT_EQ(store_->ddl_statements(), ddl);
  auto rebuilt = store_->Reconstruct(id);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->TextContent(rebuilt->root()), "persist");
  // Ids continue.
  EXPECT_EQ(Insert("<memo><body>next</body></memo>"), id + 1);
}

TEST_F(ShreddingStoreTest, DocumentWithoutRootRejected) {
  xml::Document empty;
  EXPECT_TRUE(
      store_->InsertDocument(empty, Info("e.xml")).status().IsInvalidArgument());
}

}  // namespace
}  // namespace netmark::baseline
