// Fig 8 — "Highly scalable and flexible integration": a thin router over
// arbitrary numbers of sources.
//
// Series:
//   - fan-out latency vs number of sources in a databank (in-process sources
//     isolate router cost; HTTP sources add the wire);
//   - augmentation overhead: databank of content-only sources answering a
//     context query (router does the section extraction) vs full-capability
//     sources answering it natively.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "federation/content_only_source.h"
#include "federation/local_source.h"
#include "federation/router.h"
#include "workload/corpus.h"
#include "xml/parser.h"

namespace {

using namespace netmark;

struct Fleet {
  std::vector<bench::LoadedInstance> instances;
  federation::Router router;
};

// Builds a databank of `n` full-capability in-process stores, each holding
// `docs_each` documents.
std::unique_ptr<Fleet> MakeStoreFleet(int n, size_t docs_each) {
  auto fleet = std::make_unique<Fleet>();
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    fleet->instances.push_back(
        bench::MakeLoadedInstance(docs_each, 100 + static_cast<uint64_t>(i)));
    std::string name = "s" + std::to_string(i);
    bench::Check(
        fleet->router.RegisterSource(std::make_shared<federation::LocalStoreSource>(
            name, fleet->instances.back().nm->store())),
        "register");
    names.push_back(name);
  }
  bench::Check(fleet->router.DefineDatabank("bank", names), "databank");
  return fleet;
}

// Builds a databank of `n` content-only sources (forces augmentation).
std::unique_ptr<federation::Router> MakeContentOnlyFleet(int n, int docs_each) {
  auto router = std::make_unique<federation::Router>();
  workload::CorpusGenerator gen(55);
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    auto source =
        std::make_shared<federation::ContentOnlySource>("c" + std::to_string(i));
    for (int d = 0; d < docs_each; ++d) {
      auto doc = gen.LessonLearned(i * 1000 + d);
      auto parsed = xml::ParseXml(doc.content);
      bench::Check(parsed.status(), "parse");
      source->AddDocument(doc.file_name, *parsed);
    }
    bench::Check(router->RegisterSource(source), "register");
    names.push_back("c" + std::to_string(i));
  }
  bench::Check(router->DefineDatabank("bank", names), "databank");
  return router;
}

void BM_FanOut(benchmark::State& state) {
  auto fleet = MakeStoreFleet(static_cast<int>(state.range(0)), 60);
  query::XdbQuery q;
  q.context = "Budget";
  size_t hits_count = 0;
  for (auto _ : state) {
    auto hits = fleet->router.Query("bank", q);
    bench::Check(hits.status(), "query");
    hits_count = hits->size();
    benchmark::DoNotOptimize(hits_count);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sources"] = static_cast<double>(state.range(0));
  state.counters["hits"] = static_cast<double>(hits_count);
}
BENCHMARK(BM_FanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_AugmentedFanOut(benchmark::State& state) {
  auto router = MakeContentOnlyFleet(static_cast<int>(state.range(0)), 40);
  query::XdbQuery q;
  q.context = "Lesson";
  q.content = "engine";
  size_t augmented = 0;
  for (auto _ : state) {
    auto hits = router->QueryFederated("bank", q);
    bench::Check(hits.status(), "query");
    augmented = hits->stats.augmented;
    benchmark::DoNotOptimize(hits->hits.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sources"] = static_cast<double>(state.range(0));
  state.counters["augmented_sources"] = static_cast<double>(augmented);
}
BENCHMARK(BM_AugmentedFanOut)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void PrintScalingTable() {
  bench::ReportHeader("Fig 8: thin-router scaling over arbitrary sources",
                      "query cost grows ~linearly in fan-out (no mediator "
                      "bottleneck), and augmentation is a modest constant "
                      "factor per limited source");
  std::printf("%10s %18s %14s %22s\n", "sources", "fan-out (ms)", "hits",
              "ms per source");
  bench::JsonLines json("fig8_federation");
  query::XdbQuery q;
  q.context = "Budget";
  for (int n : {1, 2, 4, 8, 16, 32}) {
    auto fleet = MakeStoreFleet(n, 60);
    // Warm.
    bench::Check(fleet->router.Query("bank", q).status(), "warm");
    const int kReps = 10;
    Stopwatch w;
    size_t hits_count = 0;
    for (int r = 0; r < kReps; ++r) {
      hits_count = bench::Unwrap(fleet->router.Query("bank", q), "query").size();
    }
    double ms = w.ElapsedSeconds() * 1000 / kReps;
    std::printf("%10d %18.3f %14zu %22.3f\n", n, ms, hits_count, ms / n);
    json.Emit("fan_out", static_cast<double>(n), ms * 1e6,
              static_cast<double>(hits_count), "hits");
    if (n == 32) {
      // Widest fan-out: dump the router registry (federation counters,
      // per-source latency histograms, breaker-state gauges).
      json.EmitMetrics(*fleet->router.metrics());
    }
  }
  std::printf("shape check: 'ms per source' stays ~flat -> the router adds no\n"
              "super-linear coordination cost; hits scale with sources.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintScalingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
