#include "common/work_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

namespace netmark {
namespace {

TEST(WorkQueueTest, FifoWithinCapacity) {
  WorkQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(WorkQueueTest, CloseDrainsThenSignalsDone) {
  WorkQueue<int> q(4);
  ASSERT_TRUE(q.Push(7));
  q.Close();
  EXPECT_FALSE(q.Push(8));       // rejected after close
  EXPECT_EQ(q.Pop(), 7);         // queued item still delivered
  EXPECT_EQ(q.Pop(), std::nullopt);  // then the termination signal
  EXPECT_TRUE(q.closed());
}

TEST(WorkQueueTest, PushBlocksUntilConsumerMakesRoom) {
  WorkQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop(), 1);  // frees a slot
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(WorkQueueTest, ManyProducersManyConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  WorkQueue<int> q(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::mutex mu;
  std::multiset<int> received;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.Pop()) {
        std::lock_guard<std::mutex> lock(mu);
        received.insert(*item);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(kProducers * kPerProducer));
  // Exactly once: no value delivered twice, none lost.
  int expected = 0;
  for (int v : received) EXPECT_EQ(v, expected++);
}

}  // namespace
}  // namespace netmark
