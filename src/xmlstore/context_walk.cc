#include "xmlstore/context_walk.h"

#include <algorithm>

namespace netmark::xmlstore {

using storage::IndexKey;
using storage::RowId;
using storage::Value;

netmark::Result<RowId> FindGoverningContext(const XmlStore& store, RowId start) {
  RowId cur = start;
  // Bounded to the store's node count in principle; use a generous hop cap to
  // guard against link corruption.
  for (int hops = 0; hops < 1 << 20; ++hops) {
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, store.GetNode(cur));
    if (rec.is_context()) return cur;  // includes the case where the hit IS a heading
    if (rec.prev_rowid.valid()) {
      cur = rec.prev_rowid;
    } else if (rec.parent_rowid.valid()) {
      cur = rec.parent_rowid;
    } else {
      return storage::kInvalidRowId;  // ran off the top: no governing context
    }
  }
  return netmark::Status::Corruption("context walk did not terminate (link cycle?)");
}

netmark::Result<RowId> FindGoverningContextViaIndex(const XmlStore& store,
                                                    RowId start) {
  // Identical traversal, but each "previous sibling" / "parent" hop is
  // resolved by logical ids through secondary indexes: fetch all siblings of
  // the current node, pick the one with the largest NODEID below ours. This
  // is what a store without physical links must do.
  RowId cur = start;
  for (int hops = 0; hops < 1 << 20; ++hops) {
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, store.GetNode(cur));
    if (rec.is_context()) return cur;
    // Find the previous sibling via an index join on the parent's children.
    RowId prev = storage::kInvalidRowId;
    if (rec.parent_node_id != 0) {
      NETMARK_ASSIGN_OR_RETURN(std::vector<RowId> siblings,
                               store.NodesWithParent(rec.parent_node_id));
      int64_t best = -1;
      for (RowId sid : siblings) {
        NETMARK_ASSIGN_OR_RETURN(NodeRecord s, store.GetNode(sid));
        if (s.node_id < rec.node_id && s.node_id > best) {
          best = s.node_id;
          prev = sid;
        }
      }
    }
    if (prev.valid()) {
      cur = prev;
    } else if (rec.parent_node_id != 0) {
      // Parent hop resolved logically through the (DOC_ID, NODEID) index.
      NETMARK_ASSIGN_OR_RETURN(cur,
                               store.NodeByDocAndId(rec.doc_id, rec.parent_node_id));
    } else {
      return storage::kInvalidRowId;
    }
  }
  return netmark::Status::Corruption("context walk did not terminate (link cycle?)");
}

netmark::Result<std::vector<RowId>> SectionContent(const XmlStore& store,
                                                   RowId context) {
  NETMARK_ASSIGN_OR_RETURN(NodeRecord head, store.GetNode(context));
  if (!head.is_context()) {
    return netmark::Status::InvalidArgument("SectionContent requires a CONTEXT node");
  }
  std::vector<RowId> out;
  RowId cur = head.sibling_rowid;
  for (int hops = 0; cur.valid() && hops < 1 << 20; ++hops) {
    NETMARK_ASSIGN_OR_RETURN(NodeRecord rec, store.GetNode(cur));
    if (rec.is_context()) break;  // next section begins
    out.push_back(cur);
    cur = rec.sibling_rowid;
  }
  return out;
}

netmark::Result<Section> BuildSection(const XmlStore& store, RowId context) {
  NETMARK_ASSIGN_OR_RETURN(NodeRecord head, store.GetNode(context));
  Section section;
  section.context = context;
  section.doc_id = head.doc_id;
  NETMARK_ASSIGN_OR_RETURN(section.heading, store.SubtreeText(context));
  NETMARK_ASSIGN_OR_RETURN(section.content, SectionContent(store, context));
  return section;
}

netmark::Result<std::string> SectionText(const XmlStore& store, RowId context) {
  NETMARK_ASSIGN_OR_RETURN(std::vector<RowId> content, SectionContent(store, context));
  std::string out;
  for (RowId id : content) {
    NETMARK_ASSIGN_OR_RETURN(std::string text, store.SubtreeText(id));
    if (!text.empty()) {
      if (!out.empty()) out += ' ';
      out += text;
    }
  }
  return out;
}

}  // namespace netmark::xmlstore
