#include "common/string_util.h"

#include <gtest/gtest.h>

namespace netmark {
namespace {

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, CaseFolding) {
  EXPECT_EQ(ToLower("MiXeD-09"), "mixed-09");
  EXPECT_EQ(ToUpper("MiXeD-09"), "MIXED-09");
  EXPECT_TRUE(EqualsIgnoreCase("Shuttle", "sHUTTLE"));
  EXPECT_FALSE(EqualsIgnoreCase("Shuttle", "Shuttles"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("context=abc", "context="));
  EXPECT_FALSE(StartsWith("ctx", "context"));
  EXPECT_TRUE(EndsWith("report.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitAndTrimDropsEmpties) {
  auto parts = SplitAndTrim(" a , ,b ,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "::"), "x::y::z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(ReplaceAll("none here", "xyz", "!"), "none here");
  EXPECT_EQ(ReplaceAll("ababab", "ab", "a"), "aaa");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("  -7 "), -7);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StringUtilTest, UrlCodecRoundTrip) {
  const std::string original = "Context=Technology Gap&Content=Shrinking/100%";
  std::string encoded = UrlEncode(original);
  EXPECT_EQ(encoded.find('&'), std::string::npos);
  EXPECT_EQ(encoded.find('='), std::string::npos);
  auto decoded = UrlDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(StringUtilTest, UrlDecodePlusAndPercent) {
  EXPECT_EQ(*UrlDecode("a+b"), "a b");
  EXPECT_EQ(*UrlDecode("a%20b"), "a b");
  EXPECT_EQ(*UrlDecode("%41%42"), "AB");
  EXPECT_FALSE(UrlDecode("%4").ok());
  EXPECT_FALSE(UrlDecode("%GG").ok());
}

TEST(StringUtilTest, NormalizeWhitespace) {
  EXPECT_EQ(NormalizeWhitespace("  a \n\t b  c  "), "a b c");
  EXPECT_EQ(NormalizeWhitespace(""), "");
  EXPECT_EQ(NormalizeWhitespace(" \n "), "");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

}  // namespace
}  // namespace netmark
