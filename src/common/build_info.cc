#include "common/build_info.h"

// Both macros come from src/common/CMakeLists.txt (configure-time values;
// re-run cmake to refresh the sha).
#ifndef NETMARK_VERSION
#define NETMARK_VERSION "0.0.0"
#endif
#ifndef NETMARK_GIT_SHA
#define NETMARK_GIT_SHA "unknown"
#endif

namespace netmark {

const char* BuildVersion() { return NETMARK_VERSION; }

const char* BuildGitSha() { return NETMARK_GIT_SHA; }

}  // namespace netmark
