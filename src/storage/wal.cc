#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/string_util.h"
#include "observability/thread_trace.h"
#include "storage/crash_point.h"

namespace netmark::storage {

namespace {

constexpr size_t kFrameHeader = 8;  // u32 body_len + u32 crc
constexpr size_t kBodyFixed = 17;   // u64 lsn + u64 txn + u8 type

void Put16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), 2);
}
void Put32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void Put64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

}  // namespace

netmark::Result<WalFsyncPolicy> ParseWalFsyncPolicy(std::string_view text) {
  if (text == "commit") return WalFsyncPolicy::kCommit;
  if (text == "batch") return WalFsyncPolicy::kBatch;
  if (text == "none") return WalFsyncPolicy::kNone;
  return netmark::Status::InvalidArgument(
      "wal_fsync must be commit|batch|none, got '" + std::string(text) + "'");
}

const char* WalFsyncPolicyName(WalFsyncPolicy policy) {
  switch (policy) {
    case WalFsyncPolicy::kCommit: return "commit";
    case WalFsyncPolicy::kBatch: return "batch";
    case WalFsyncPolicy::kNone: return "none";
  }
  return "unknown";
}

netmark::Result<WalScan> Wal::ReadRecords(const std::string& path) {
  WalScan scan;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return scan;  // no log = empty scan
    return netmark::Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return netmark::Status::IOError("lseek " + path + ": " + std::strerror(errno));
  }
  std::string buf;
  buf.resize(static_cast<size_t>(size));
  size_t got = 0;
  while (got < buf.size()) {
    ssize_t n = ::pread(fd, buf.data() + got, buf.size() - got,
                        static_cast<off_t>(got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return netmark::Status::IOError("read " + path + ": " + std::strerror(errno));
    }
    got += static_cast<size_t>(n);
  }
  ::close(fd);

  auto tear = [&](size_t at, const char* reason) {
    scan.valid_bytes = at;
    scan.torn_tail = at < buf.size();
    scan.torn_reason = scan.torn_tail ? reason : "";
  };

  size_t pos = 0;
  while (pos < buf.size()) {
    if (buf.size() - pos < kFrameHeader) {
      tear(pos, "short frame header");
      return scan;
    }
    uint32_t body_len, crc;
    std::memcpy(&body_len, buf.data() + pos, 4);
    std::memcpy(&crc, buf.data() + pos + 4, 4);
    // A body is never larger than one page image plus its descriptors.
    if (body_len < kBodyFixed ||
        body_len > kBodyFixed + 2 + 65535 + 4 + kPageSize) {
      tear(pos, "implausible record length");
      return scan;
    }
    if (buf.size() - pos - kFrameHeader < body_len) {
      tear(pos, "short record body");
      return scan;
    }
    const char* body = buf.data() + pos + kFrameHeader;
    if (netmark::Crc32c(body, body_len) != crc) {
      tear(pos, "crc mismatch");
      return scan;
    }
    WalRecord rec;
    uint8_t type;
    std::memcpy(&rec.lsn, body, 8);
    std::memcpy(&rec.txn_id, body + 8, 8);
    std::memcpy(&type, body + 16, 1);
    const char* payload = body + kBodyFixed;
    size_t payload_len = body_len - kBodyFixed;
    if (type == static_cast<uint8_t>(WalRecordType::kPageImage)) {
      rec.type = WalRecordType::kPageImage;
      if (payload_len < 2) {
        tear(pos, "page image payload too short");
        return scan;
      }
      uint16_t table_len;
      std::memcpy(&table_len, payload, 2);
      if (payload_len != 2 + static_cast<size_t>(table_len) + 4 + kPageSize) {
        tear(pos, "page image payload size mismatch");
        return scan;
      }
      rec.table.assign(payload + 2, table_len);
      std::memcpy(&rec.page_id, payload + 2 + table_len, 4);
      rec.image.assign(payload + 2 + table_len + 4, kPageSize);
    } else if (type == static_cast<uint8_t>(WalRecordType::kCommit)) {
      rec.type = WalRecordType::kCommit;
      if (payload_len != 0) {
        tear(pos, "commit record with payload");
        return scan;
      }
    } else {
      tear(pos, "unknown record type");
      return scan;
    }
    scan.records.push_back(std::move(rec));
    pos += kFrameHeader + body_len;
  }
  scan.valid_bytes = pos;
  return scan;
}

netmark::Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path,
                                                WalFsyncPolicy policy,
                                                netmark::Env* env) {
  if (env == nullptr) env = netmark::Env::Default();
  NETMARK_ASSIGN_OR_RETURN(WalScan scan, ReadRecords(path));
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<netmark::File> file,
                           env->OpenFile(path, /*create=*/true));
  if (scan.torn_tail) {
    NETMARK_RETURN_NOT_OK(
        file->Truncate(scan.valid_bytes).WithContext("truncate torn wal tail"));
  }
  std::unique_ptr<Wal> wal(new Wal(path, std::move(file), policy));
  wal->append_offset_ = scan.valid_bytes;
  wal->size_bytes_.store(scan.valid_bytes, std::memory_order_relaxed);
  if (!scan.records.empty()) {
    uint64_t last = scan.records.back().lsn;
    wal->next_lsn_ = last + 1;
    wal->last_lsn_.store(last, std::memory_order_relaxed);
  }
  return wal;
}

Wal::~Wal() = default;

void Wal::EncodeRecord(uint64_t txn_id, WalRecordType type,
                       std::string_view payload, std::string* out) {
  std::string body;
  body.reserve(kBodyFixed + payload.size());
  Put64(&body, next_lsn_);
  Put64(&body, txn_id);
  body.push_back(static_cast<char>(type));
  body.append(payload.data(), payload.size());
  Put32(out, static_cast<uint32_t>(body.size()));
  Put32(out, netmark::Crc32c(body));
  out->append(body);
  last_lsn_.store(next_lsn_, std::memory_order_relaxed);
  ++next_lsn_;
  ++staged_records_;
}

void Wal::StagePageImage(uint64_t txn_id, std::string_view table, PageId page_id,
                         const uint8_t* image) {
  std::string payload;
  payload.reserve(2 + table.size() + 4 + kPageSize);
  Put16(&payload, static_cast<uint16_t>(table.size()));
  payload.append(table.data(), table.size());
  Put32(&payload, page_id);
  payload.append(reinterpret_cast<const char*>(image), kPageSize);
  EncodeRecord(txn_id, WalRecordType::kPageImage, payload, &staged_);
}

netmark::Status Wal::AppendCommit(uint64_t txn_id) {
  EncodeRecord(txn_id, WalRecordType::kCommit, {}, &staged_);
  // Attributed to whatever trace the calling thread carries (an /xdb PUT or
  // a daemon insert); untraced callers make this inert.
  observability::ScopedSpan span(observability::CurrentThreadTrace(),
                                 "wal_append",
                                 observability::CurrentThreadSpan());
  span.Annotate("bytes", std::to_string(staged_.size()));
  observability::ThreadTraceScope nest(observability::CurrentThreadTrace(),
                                       span.id());
  // One write for the whole transaction: page images + commit. A crash mid-
  // write leaves a CRC-torn tail that recovery drops — the transaction simply
  // never happened.
  MaybeCrashPoint("wal_before_append");
  NETMARK_RETURN_NOT_OK(file_->Write(append_offset_, staged_.data(), staged_.size()));
  append_offset_ += staged_.size();
  size_bytes_.fetch_add(staged_.size(), std::memory_order_relaxed);
  bytes_appended_.fetch_add(staged_.size(), std::memory_order_relaxed);
  records_appended_.fetch_add(staged_records_, std::memory_order_relaxed);
  commits_.fetch_add(1, std::memory_order_relaxed);
  staged_.clear();
  staged_records_ = 0;
  unsynced_ = true;
  MaybeCrashPoint("wal_after_append");
  if (policy_ == WalFsyncPolicy::kCommit) {
    NETMARK_RETURN_NOT_OK(Sync());
    MaybeCrashPoint("wal_after_commit_sync");
  }
  return netmark::Status::OK();
}

void Wal::DiscardStaged() {
  // The LSNs consumed by the discarded records are simply skipped; readers
  // only require LSNs to be increasing, not dense.
  staged_.clear();
  staged_records_ = 0;
}

netmark::Status Wal::Sync() {
  if (!unsynced_) return netmark::Status::OK();
  observability::ScopedSpan span(observability::CurrentThreadTrace(),
                                 "wal_fsync",
                                 observability::CurrentThreadSpan());
  netmark::Status st = file_->Sync();
  if (!st.ok()) {
    span.End(false, st.ToString());
    return st;
  }
  unsynced_ = false;
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  return netmark::Status::OK();
}

netmark::Status Wal::BatchSync() {
  if (policy_ != WalFsyncPolicy::kBatch) return netmark::Status::OK();
  return Sync();
}

netmark::Status Wal::TruncateAll() {
  MaybeCrashPoint("wal_before_truncate");
  NETMARK_RETURN_NOT_OK(file_->Truncate(0).WithContext("wal truncate"));
  append_offset_ = 0;
  // Make the truncation durable so recovery never replays pre-checkpoint
  // images over post-checkpoint heap state (replay is idempotent anyway, but
  // the bounded-recovery-time guarantee depends on the log actually
  // shrinking).
  NETMARK_RETURN_NOT_OK(file_->Sync());
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  size_bytes_.store(0, std::memory_order_relaxed);
  unsynced_ = false;
  truncations_.fetch_add(1, std::memory_order_relaxed);
  MaybeCrashPoint("wal_after_truncate");
  return netmark::Status::OK();
}

}  // namespace netmark::storage
