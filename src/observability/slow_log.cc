#include "observability/slow_log.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/result.h"
#include "common/string_util.h"

namespace netmark::observability {

int64_t ResolveSlowQueryThresholdMs(int64_t configured_ms) {
  const char* env = std::getenv("NETMARK_SLOW_QUERY_MS");
  if (env != nullptr && *env != '\0') {
    auto parsed = netmark::ParseInt64(env);
    if (parsed.ok() && *parsed >= 0) return *parsed;
  }
  return configured_ms;
}

namespace {

std::string SpanPath(const std::vector<SpanData>& spans, int id) {
  std::string path;
  // Walk to the root; spans reference earlier indices only, so this
  // terminates. Guard against malformed parents anyway.
  int hops = 0;
  for (int cur = id; cur >= 0 && cur < static_cast<int>(spans.size()) && hops < 64;
       cur = spans[static_cast<size_t>(cur)].parent, ++hops) {
    const std::string& name = spans[static_cast<size_t>(cur)].name;
    path = path.empty() ? name : name + "/" + path;
  }
  return path;
}

std::string FormatMs(int64_t micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(micros) / 1000.0);
  return buf;
}

}  // namespace

std::string FormatSpansCompact(const std::vector<SpanData>& spans) {
  std::string out;
  for (const SpanData& span : spans) {
    if (!out.empty()) out += "; ";
    out += SpanPath(spans, span.id);
    out += ':';
    out += span.finished() ? FormatMs(span.duration_micros()) + "ms" : "...";
    out += span.ok ? " ok" : " err";
    if (!span.note.empty()) out += "(" + span.note + ")";
    if (!span.annotations.empty()) {
      out += " [";
      bool first = true;
      for (const auto& [key, value] : span.annotations) {
        if (!first) out += ' ';
        first = false;
        out += key + "=" + value;
      }
      out += ']';
    }
  }
  return out;
}

void MaybeLogSlowQuery(std::string_view endpoint, const std::string& query_string,
                       int64_t total_micros, int64_t threshold_ms,
                       const Trace& trace) {
  if (threshold_ms <= 0) return;
  if (total_micros < threshold_ms * 1000) return;
  NETMARK_SLOG(Warning, "slow_query")
      .Field("endpoint", endpoint)
      .Field("query", query_string)
      .Field("total_ms", FormatMs(total_micros))
      .Field("threshold_ms", threshold_ms)
      .Field("trace_id", trace.trace_id())  // jump-off point: /traces?id=
      .Field("spans", FormatSpansCompact(trace.Snapshot()));
}

}  // namespace netmark::observability
