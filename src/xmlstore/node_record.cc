#include "xmlstore/node_record.h"

namespace netmark::xmlstore {

using storage::ColumnSchema;
using storage::Row;
using storage::RowId;
using storage::TableSchema;
using storage::Value;
using storage::ValueType;

TableSchema NodeRecord::Schema() {
  return TableSchema(
      "XML", {
                 ColumnSchema{"NODEID", ValueType::kInt64, false},
                 ColumnSchema{"DOC_ID", ValueType::kInt64, false},
                 ColumnSchema{"PARENTROWID", ValueType::kInt64, false},
                 ColumnSchema{"PARENTNODEID", ValueType::kInt64, false},
                 ColumnSchema{"NODETYPE", ValueType::kInt64, false},
                 ColumnSchema{"NODENAME", ValueType::kString, true},
                 ColumnSchema{"NODEDATA", ValueType::kString, true},
                 ColumnSchema{"SIBLINGID", ValueType::kInt64, false},
                 ColumnSchema{"PREVROWID", ValueType::kInt64, false},
             });
}

Row NodeRecord::ToRow() const {
  Row row;
  row.reserve(9);
  row.push_back(Value::Int(node_id));
  row.push_back(Value::Int(doc_id));
  row.push_back(Value::Int(static_cast<int64_t>(
      parent_rowid.valid() ? parent_rowid.Pack() : RowId::kInvalidPacked)));
  row.push_back(Value::Int(parent_node_id));
  row.push_back(Value::Int(static_cast<int64_t>(node_type)));
  row.push_back(node_name.empty() ? Value::Null() : Value::Str(node_name));
  row.push_back(node_data.empty() ? Value::Null() : Value::Str(node_data));
  row.push_back(Value::Int(static_cast<int64_t>(
      sibling_rowid.valid() ? sibling_rowid.Pack() : RowId::kInvalidPacked)));
  row.push_back(Value::Int(static_cast<int64_t>(
      prev_rowid.valid() ? prev_rowid.Pack() : RowId::kInvalidPacked)));
  return row;
}

netmark::Result<NodeRecord> NodeRecord::FromRow(const Row& row) {
  if (row.size() != 9) {
    return netmark::Status::Corruption("XML row has wrong arity");
  }
  NodeRecord r;
  r.node_id = row[kNodeId].AsInt();
  r.doc_id = row[kDocId].AsInt();
  r.parent_rowid = RowId::Unpack(static_cast<uint64_t>(row[kParentRowId].AsInt()));
  r.parent_node_id = row[kParentNodeId].AsInt();
  NETMARK_ASSIGN_OR_RETURN(
      r.node_type,
      xml::NetmarkNodeTypeFromInt(static_cast<int32_t>(row[kNodeType].AsInt())));
  if (!row[kNodeName].is_null()) r.node_name = row[kNodeName].AsStr();
  if (!row[kNodeData].is_null()) r.node_data = row[kNodeData].AsStr();
  r.sibling_rowid = RowId::Unpack(static_cast<uint64_t>(row[kSiblingId].AsInt()));
  r.prev_rowid = RowId::Unpack(static_cast<uint64_t>(row[kPrevRowId].AsInt()));
  return r;
}

TableSchema DocRecord::Schema() {
  return TableSchema("DOC", {
                                ColumnSchema{"DOC_ID", ValueType::kInt64, false},
                                ColumnSchema{"FILE_NAME", ValueType::kString, false},
                                ColumnSchema{"FILE_DATE", ValueType::kInt64, false},
                                ColumnSchema{"FILE_SIZE", ValueType::kInt64, false},
                                ColumnSchema{"NODE_COUNT", ValueType::kInt64, false},
                            });
}

Row DocRecord::ToRow() const {
  Row row;
  row.reserve(5);
  row.push_back(Value::Int(doc_id));
  row.push_back(Value::Str(file_name));
  row.push_back(Value::Int(file_date));
  row.push_back(Value::Int(file_size));
  row.push_back(Value::Int(node_count));
  return row;
}

netmark::Result<DocRecord> DocRecord::FromRow(const Row& row) {
  // 4-column rows predate NODE_COUNT; 0 means "unknown" and disables the
  // reconstruction completeness check for that document.
  if (row.size() != 4 && row.size() != 5) {
    return netmark::Status::Corruption("DOC row has wrong arity");
  }
  DocRecord r;
  r.doc_id = row[kDocId].AsInt();
  r.file_name = row[kFileName].AsStr();
  r.file_date = row[kFileDate].AsInt();
  r.file_size = row[kFileSize].AsInt();
  if (row.size() > kNodeCount) r.node_count = row[kNodeCount].AsInt();
  return r;
}

}  // namespace netmark::xmlstore
