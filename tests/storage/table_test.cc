#include "storage/table.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"

namespace netmark::storage {
namespace {

TableSchema PeopleSchema() {
  return TableSchema("people", {
                                   ColumnSchema{"id", ValueType::kInt64, false},
                                   ColumnSchema{"name", ValueType::kString, false},
                                   ColumnSchema{"age", ValueType::kInt64, true},
                               });
}

Row Person(int64_t id, const std::string& name, int64_t age) {
  return {Value::Int(id), Value::Str(name), Value::Int(age)};
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("tabletest");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    auto table = Table::Open(PeopleSchema(), (dir_->path() / "people.heap").string());
    ASSERT_TRUE(table.ok());
    table_ = std::move(*table);
  }
  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, InsertGetRoundTrip) {
  auto id = table_->Insert(Person(1, "ada", 36));
  ASSERT_TRUE(id.ok());
  auto row = table_->Get(*id);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsStr(), "ada");
  EXPECT_EQ(table_->row_count(), 1u);
}

TEST_F(TableTest, InsertRejectsSchemaViolations) {
  EXPECT_TRUE(table_->Insert({Value::Int(1)}).status().IsInvalidArgument());
  EXPECT_TRUE(table_->Insert({Value::Int(1), Value::Null(), Value::Null()})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      table_->Insert({Value::Str("x"), Value::Str("y"), Value::Null()})
          .status()
          .IsInvalidArgument());
}

TEST_F(TableTest, IndexMaintainedAcrossMutations) {
  ASSERT_TRUE(table_->CreateIndex("by_name", {"name"}).ok());
  auto a = table_->Insert(Person(1, "ada", 36));
  auto b = table_->Insert(Person(2, "bob", 50));
  ASSERT_TRUE(a.ok() && b.ok());

  auto hits = table_->IndexLookup("by_name", {Value::Str("ada")});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0], *a);

  // Update moves the index entry.
  ASSERT_TRUE(table_->Update(*a, Person(1, "ada lovelace", 36)).ok());
  EXPECT_TRUE(table_->IndexLookup("by_name", {Value::Str("ada")})->empty());
  EXPECT_EQ(table_->IndexLookup("by_name", {Value::Str("ada lovelace")})->size(), 1u);

  // Delete removes it.
  ASSERT_TRUE(table_->Delete(*b).ok());
  EXPECT_TRUE(table_->IndexLookup("by_name", {Value::Str("bob")})->empty());
  EXPECT_EQ(table_->row_count(), 1u);
}

TEST_F(TableTest, CreateIndexBackfillsExistingRows) {
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(table_->Insert(Person(i, "p" + std::to_string(i), i * 2)).ok());
  }
  ASSERT_TRUE(table_->CreateIndex("by_id", {"id"}).ok());
  auto hits = table_->IndexLookup("by_id", {Value::Int(13)});
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  auto row = table_->Get((*hits)[0]);
  EXPECT_EQ((*row)[1].AsStr(), "p13");
}

TEST_F(TableTest, CompositeIndexRangeAndPrefix) {
  ASSERT_TRUE(table_->CreateIndex("by_age_id", {"age", "id"}).ok());
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(table_->Insert(Person(i, "p", i % 3 == 0 ? 30 : 40)).ok());
  }
  auto thirty = table_->IndexPrefix("by_age_id", {Value::Int(30)});
  ASSERT_TRUE(thirty.ok());
  EXPECT_EQ(thirty->size(), 10u);
  // Inclusive range with composite keys: a bare {40} upper bound sorts
  // *before* every {40, id} key (shorter prefix first), so only age-30 rows
  // fall inside [{30}, {40}].
  auto range = table_->IndexRange("by_age_id", {Value::Int(30)}, {Value::Int(40)});
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->size(), 10u);
  // Extending the upper bound with a max id captures the age-40 rows too.
  auto full = table_->IndexRange("by_age_id", {Value::Int(30)},
                                 {Value::Int(40), Value::Int(INT64_MAX)});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 30u);
}

TEST_F(TableTest, DuplicateIndexRejected) {
  ASSERT_TRUE(table_->CreateIndex("ix", {"id"}).ok());
  EXPECT_TRUE(table_->CreateIndex("ix", {"name"}).IsAlreadyExists());
  EXPECT_TRUE(table_->CreateIndex("bad", {"nope"}).IsNotFound());
  EXPECT_FALSE(table_->HasIndex("bad"));
}

TEST_F(TableTest, LookupOnMissingIndexFails) {
  EXPECT_TRUE(table_->IndexLookup("nope", {Value::Int(1)}).status().IsNotFound());
}

TEST_F(TableTest, ScanVisitsAllRows) {
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table_->Insert(Person(i, "n", i)).ok());
  }
  int64_t sum = 0;
  ASSERT_TRUE(table_
                  ->Scan([&](RowId, const Row& row) {
                    sum += row[0].AsInt();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(sum, 45);
}

TEST_F(TableTest, ScanErrorPropagates) {
  ASSERT_TRUE(table_->Insert(Person(1, "x", 1)).ok());
  Status st = table_->Scan(
      [](RowId, const Row&) { return Status::Internal("stop here"); });
  EXPECT_TRUE(st.IsInternal());
}

}  // namespace
}  // namespace netmark::storage
