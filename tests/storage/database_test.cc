#include "storage/database.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"

namespace netmark::storage {
namespace {

TableSchema DocsSchema() {
  return TableSchema("docs", {
                                 ColumnSchema{"id", ValueType::kInt64, false},
                                 ColumnSchema{"title", ValueType::kString, false},
                             });
}

TEST(DatabaseTest, CreateAndGetTable) {
  auto dir = TempDir::Make("dbtest");
  ASSERT_TRUE(dir.ok());
  auto db = Database::Open(dir->str());
  ASSERT_TRUE(db.ok());
  auto table = (*db)->CreateTable(DocsSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*db)->HasTable("docs"));
  EXPECT_TRUE((*db)->GetTable("docs").ok());
  EXPECT_TRUE((*db)->GetTable("nope").status().IsNotFound());
  EXPECT_TRUE((*db)->CreateTable(DocsSchema()).status().IsAlreadyExists());
}

TEST(DatabaseTest, DdlCounterTracksCreateStatements) {
  auto dir = TempDir::Make("dbtest");
  ASSERT_TRUE(dir.ok());
  auto db = Database::Open(dir->str());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->ddl_statements(), 0u);
  ASSERT_TRUE((*db)->CreateTable(DocsSchema()).ok());
  EXPECT_EQ((*db)->ddl_statements(), 1u);
  ASSERT_TRUE((*db)->CreateIndex("docs", "by_id", {"id"}).ok());
  EXPECT_EQ((*db)->ddl_statements(), 2u);
}

TEST(DatabaseTest, PersistsTablesRowsAndIndexesAcrossReopen) {
  auto dir = TempDir::Make("dbtest");
  ASSERT_TRUE(dir.ok());
  RowId saved;
  {
    auto db = Database::Open(dir->str());
    ASSERT_TRUE(db.ok());
    auto table = (*db)->CreateTable(DocsSchema());
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*db)->CreateIndex("docs", "by_title", {"title"}).ok());
    auto id = (*table)->Insert({Value::Int(1), Value::Str("IBPD budget")});
    ASSERT_TRUE(id.ok());
    saved = *id;
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    auto db = Database::Open(dir->str());
    ASSERT_TRUE(db.ok());
    EXPECT_EQ((*db)->ddl_statements(), 2u);  // counter survives
    auto table = (*db)->GetTable("docs");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->row_count(), 1u);
    auto row = (*table)->Get(saved);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[1].AsStr(), "IBPD budget");
    // Index was rebuilt at open.
    auto hits = (*table)->IndexLookup("by_title", {Value::Str("IBPD budget")});
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits->size(), 1u);
    EXPECT_EQ((*hits)[0], saved);
  }
}

TEST(DatabaseTest, DropTableRemovesEverything) {
  auto dir = TempDir::Make("dbtest");
  ASSERT_TRUE(dir.ok());
  auto db = Database::Open(dir->str());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(DocsSchema()).ok());
  ASSERT_TRUE((*db)->DropTable("docs").ok());
  EXPECT_FALSE((*db)->HasTable("docs"));
  EXPECT_TRUE((*db)->DropTable("docs").IsNotFound());
  // Re-creating after drop works.
  EXPECT_TRUE((*db)->CreateTable(DocsSchema()).ok());
}

TEST(DatabaseTest, MultipleTablesCoexist) {
  auto dir = TempDir::Make("dbtest");
  ASSERT_TRUE(dir.ok());
  auto db = Database::Open(dir->str());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateTable(DocsSchema()).ok());
  ASSERT_TRUE((*db)
                  ->CreateTable(TableSchema(
                      "other", {ColumnSchema{"x", ValueType::kString, true}}))
                  .ok());
  auto names = (*db)->TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "docs");
  EXPECT_EQ(names[1], "other");
}

}  // namespace
}  // namespace netmark::storage
