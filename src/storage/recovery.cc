#include "storage/recovery.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>

#include "common/clock.h"
#include "storage/crash_point.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace netmark::storage {

namespace fs = std::filesystem;

namespace {

class FdCache {
 public:
  ~FdCache() {
    for (auto& [name, fd] : fds_) ::close(fd);
  }
  netmark::Result<int> Get(const std::string& dir, const std::string& table) {
    auto it = fds_.find(table);
    if (it != fds_.end()) return it->second;
    // Must match Database::TableFilePath.
    std::string path = (fs::path(dir) / (table + ".heap")).string();
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      return netmark::Status::IOError("recovery open " + path + ": " +
                                      std::strerror(errno));
    }
    fds_[table] = fd;
    return fd;
  }
  netmark::Status SyncAll() {
    for (auto& [name, fd] : fds_) {
      if (::fdatasync(fd) != 0) {
        return netmark::Status::IOError("recovery fsync " + name + ".heap: " +
                                        std::strerror(errno));
      }
    }
    return netmark::Status::OK();
  }

 private:
  std::map<std::string, int> fds_;
};

}  // namespace

netmark::Result<RecoveryStats> RecoverDatabase(const std::string& dir,
                                               const std::string& wal_path) {
  RecoveryStats stats;
  int64_t start = netmark::MonotonicMicros();
  NETMARK_ASSIGN_OR_RETURN(WalScan scan, Wal::ReadRecords(wal_path));
  stats.records_scanned = scan.records.size();
  stats.torn_tail = scan.torn_tail;
  if (scan.records.empty() && !scan.torn_tail) {
    stats.micros = netmark::MonotonicMicros() - start;
    return stats;  // empty or absent log: nothing to do
  }
  stats.performed = true;

  // Pass 1: which transactions committed?
  std::set<uint64_t> committed;
  std::set<uint64_t> seen;
  for (const WalRecord& rec : scan.records) {
    seen.insert(rec.txn_id);
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn_id);
  }
  stats.committed_txns = committed.size();
  stats.uncommitted_txns = seen.size() - committed.size();

  // Pass 2: redo committed page images in LSN order. Full-page physical
  // redo is idempotent, so a crash during this loop just means the next
  // open replays again.
  FdCache fds;
  for (const WalRecord& rec : scan.records) {
    if (rec.type != WalRecordType::kPageImage) continue;
    if (committed.count(rec.txn_id) == 0) continue;
    NETMARK_ASSIGN_OR_RETURN(int fd, fds.Get(dir, rec.table));
    off_t offset = static_cast<off_t>(rec.page_id) * static_cast<off_t>(kPageSize);
    size_t off = 0;
    while (off < rec.image.size()) {
      ssize_t n = ::pwrite(fd, rec.image.data() + off, rec.image.size() - off,
                           offset + static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) continue;
        return netmark::Status::IOError("recovery pwrite " + rec.table +
                                        ".heap: " + std::strerror(errno));
      }
      off += static_cast<size_t>(n);
    }
    ++stats.pages_applied;
    stats.last_lsn = rec.lsn;
    MaybeCrashPoint("recovery_page_applied");
  }
  NETMARK_RETURN_NOT_OK(fds.SyncAll());
  MaybeCrashPoint("recovery_before_truncate");

  // Heap files are durable; retire the log.
  int wal_fd = ::open(wal_path.c_str(), O_RDWR);
  if (wal_fd >= 0) {
    if (::ftruncate(wal_fd, 0) != 0 || ::fdatasync(wal_fd) != 0) {
      int saved = errno;
      ::close(wal_fd);
      return netmark::Status::IOError("recovery wal truncate: " +
                                      std::string(std::strerror(saved)));
    }
    ::close(wal_fd);
  }
  stats.micros = netmark::MonotonicMicros() - start;
  return stats;
}

}  // namespace netmark::storage
