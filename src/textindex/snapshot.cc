#include "textindex/snapshot.h"

#include <cstring>
#include <filesystem>

#include "common/temp_dir.h"

namespace netmark::textindex {

namespace {

constexpr char kMagic[4] = {'N', 'M', 'I', 'X'};
constexpr uint32_t kVersion = 1;

void Put32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void Put64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  netmark::Result<uint32_t> Get32() {
    if (pos_ + 4 > data_.size()) return netmark::Status::Corruption("truncated u32");
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  netmark::Result<uint64_t> Get64() {
    if (pos_ + 8 > data_.size()) return netmark::Status::Corruption("truncated u64");
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  netmark::Result<std::string> GetBytes(size_t n) {
    if (pos_ + n > data_.size()) return netmark::Status::Corruption("truncated bytes");
    std::string out(data_.substr(pos_, n));
    pos_ += n;
    return out;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

netmark::Status SaveIndexSnapshot(const InvertedIndex& index,
                                  const SnapshotToken& token,
                                  const std::string& path) {
  std::string out;
  out.append(kMagic, 4);
  Put32(&out, kVersion);
  Put64(&out, token.a);
  Put64(&out, token.b);
  Put64(&out, token.extra_a);
  Put64(&out, token.extra_b);
  Put64(&out, index.num_terms());
  index.Visit([&](const std::string& term, const std::vector<Posting>& postings) {
    Put32(&out, static_cast<uint32_t>(term.size()));
    out += term;
    Put64(&out, postings.size());
    for (const Posting& p : postings) {
      Put64(&out, p.key);
      Put32(&out, static_cast<uint32_t>(p.positions.size()));
      for (uint32_t pos : p.positions) Put32(&out, pos);
    }
  });
  // Atomic replace: write sideways then rename.
  std::string tmp = path + ".tmp";
  NETMARK_RETURN_NOT_OK(netmark::WriteFile(tmp, out));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return netmark::Status::IOError("snapshot rename failed: " + ec.message());
  }
  return netmark::Status::OK();
}

netmark::Result<LoadedSnapshot> LoadIndexSnapshot(const std::string& path,
                                                  const SnapshotToken& expected) {
  if (!std::filesystem::exists(path)) {
    return netmark::Status::NotFound("no index snapshot at " + path);
  }
  NETMARK_ASSIGN_OR_RETURN(std::string data, netmark::ReadFile(path));
  Cursor cursor(data);
  NETMARK_ASSIGN_OR_RETURN(std::string magic, cursor.GetBytes(4));
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    return netmark::Status::Corruption("bad snapshot magic");
  }
  NETMARK_ASSIGN_OR_RETURN(uint32_t version, cursor.Get32());
  if (version != kVersion) {
    return netmark::Status::Corruption("unsupported snapshot version " +
                                       std::to_string(version));
  }
  SnapshotToken token;
  NETMARK_ASSIGN_OR_RETURN(token.a, cursor.Get64());
  NETMARK_ASSIGN_OR_RETURN(token.b, cursor.Get64());
  NETMARK_ASSIGN_OR_RETURN(token.extra_a, cursor.Get64());
  NETMARK_ASSIGN_OR_RETURN(token.extra_b, cursor.Get64());
  if (!token.Matches(expected)) {
    return netmark::Status::InvalidArgument("stale snapshot (token mismatch)");
  }
  NETMARK_ASSIGN_OR_RETURN(uint64_t term_count, cursor.Get64());
  InvertedIndex index;
  for (uint64_t t = 0; t < term_count; ++t) {
    NETMARK_ASSIGN_OR_RETURN(uint32_t term_len, cursor.Get32());
    if (term_len > 1 << 20) return netmark::Status::Corruption("absurd term length");
    NETMARK_ASSIGN_OR_RETURN(std::string term, cursor.GetBytes(term_len));
    NETMARK_ASSIGN_OR_RETURN(uint64_t posting_count, cursor.Get64());
    std::vector<Posting> postings;
    postings.reserve(posting_count);
    uint64_t prev_key = 0;
    bool first = true;
    for (uint64_t p = 0; p < posting_count; ++p) {
      Posting posting;
      NETMARK_ASSIGN_OR_RETURN(posting.key, cursor.Get64());
      if (!first && posting.key <= prev_key) {
        return netmark::Status::Corruption("snapshot postings out of order");
      }
      first = false;
      prev_key = posting.key;
      NETMARK_ASSIGN_OR_RETURN(uint32_t n_positions, cursor.Get32());
      if (n_positions > 1 << 24) {
        return netmark::Status::Corruption("absurd position count");
      }
      posting.positions.reserve(n_positions);
      for (uint32_t k = 0; k < n_positions; ++k) {
        NETMARK_ASSIGN_OR_RETURN(uint32_t pos, cursor.Get32());
        posting.positions.push_back(pos);
      }
      postings.push_back(std::move(posting));
    }
    index.RestoreTerm(std::move(term), std::move(postings));
  }
  if (!cursor.AtEnd()) {
    return netmark::Status::Corruption("trailing bytes in snapshot");
  }
  LoadedSnapshot loaded;
  loaded.index = std::move(index);
  loaded.token = token;
  return loaded;
}

}  // namespace netmark::textindex
