// File-backed page manager.
//
// Pages are cached in memory once touched and written back on Flush/close.
// This favors the NETMARK workload (bulk document ingest, read-mostly
// querying) over strict memory bounds; an eviction policy could be added
// behind the same interface.
//
// Durability (docs/durability.md): the pager additionally tracks which pages
// were dirtied since the last TakeDirtySinceMark() call so the database's
// commit path can stage their images on the write-ahead log *before* any
// heap write. Flush never marks a page clean unless its bytes reached the
// file, and SyncToDisk() makes a completed flush durable.
//
// Disk faults (docs/durability.md): all file I/O goes through a
// netmark::Env, every v1 page is CRC-stamped on flush and verified on read
// miss, and a page whose checksum does not match is *quarantined* — the read
// returns Status::DataLoss, the page is never cached or served, and the
// scrubber/healthz report it. Read errors (EIO) do not quarantine: the
// fault may be transient and the on-disk bytes may still be good.
//
// MVCC (docs/mvcc.md): with PagerOptions::mvcc the pager keeps, per page, a
// list of immutable *published* versions tagged with the commit epoch that
// produced them, plus at most one private *working* copy the single writer
// mutates. Fetch() keeps its historical mutable semantics — it hands the
// writer the working copy, lazily cloned from the latest published version
// (copy-on-write) — while FetchAt(id, epoch) serves readers an immutable
// version without blocking on the writer. Publish(epoch) moves every dirty
// working copy into the published list under one short critical section;
// Flush() then writes only published bytes, so WAL-before-heap ordering is
// unchanged. ReclaimVersions() garbage-collects versions no pinned reader
// can see. Without the option the pager behaves exactly as it always has
// (single buffer per page, Flush writes it).

#ifndef NETMARK_STORAGE_PAGER_H_
#define NETMARK_STORAGE_PAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "storage/page.h"
#include "storage/row_id.h"

namespace netmark::storage {

/// Commit epoch tag on a published page version. Epoch 0 is the state a
/// page had on disk when the pager opened (including anything WAL recovery
/// replayed into the file); each commit publishes under the next epoch.
using Epoch = uint64_t;

/// Pseudo-epoch: "latest published state". An unpinned reader resolves to
/// the newest version of each page it touches (per-page atomic, not a
/// cross-page snapshot — pin a real epoch for that).
inline constexpr Epoch kLatestEpoch = ~static_cast<Epoch>(0);

/// Pseudo-epoch: the writer's own view — the private working copy when one
/// exists, else the latest published version. Only the (single) mutating
/// thread may read at this epoch; it is how a transaction sees its own
/// uncommitted writes.
inline constexpr Epoch kWriterEpoch = kLatestEpoch - 1;

struct PagerOptions {
  /// File I/O environment; nullptr means Env::Default().
  netmark::Env* env = nullptr;
  /// Verify the CRC32C trailer on every read miss (v1 pages only). Stamping
  /// on flush is unconditional so the knob can be toggled freely.
  bool verify_checksums = true;
  /// Run in MVCC mode: published page versions + copy-on-write writer
  /// copies (see the class comment). Off = exact legacy behavior.
  bool mvcc = false;
  /// MVCC: bound on published versions kept per page (0 = unlimited). When
  /// the cap forces a drop, readers pinned before the surviving window get
  /// Status::SnapshotTooOld.
  size_t mvcc_max_retained_versions = 0;
};

/// \brief Shared, read-only handle to one immutable page version.
///
/// Holds a reference on the underlying buffer, so the bytes stay valid even
/// if version GC or a v0->v1 upgrade retires the version concurrently.
class PageRef {
 public:
  PageRef() = default;
  explicit PageRef(std::shared_ptr<uint8_t[]> buf) : buf_(std::move(buf)) {}

  /// Page view over the buffer. Callers must treat it as read-only.
  Page page() const { return Page(buf_.get()); }
  const uint8_t* raw() const { return buf_.get(); }
  explicit operator bool() const { return buf_ != nullptr; }

 private:
  std::shared_ptr<uint8_t[]> buf_;
};

/// \brief Owns the page file: allocation, fetch, write-back.
///
/// Thread safety: Fetch()/FetchAt() may be called concurrently from many
/// reader threads (the concurrent serving path); the internal mutex guards
/// the version map and dirty bookkeeping. Returned buffers stay valid
/// without the lock (legacy mode never evicts; MVCC mode hands out
/// shared_ptr references). Mutators (Allocate / Fetch / MarkDirty / Flush /
/// Publish / TakeDirtySinceMark) are additionally serialized by the
/// store-level writer lock, so they never race each other — but they do
/// share the map with readers, hence the mutex.
class Pager {
 public:
  /// Opens (creating if absent) the page file at `path`.
  static netmark::Result<std::unique_ptr<Pager>> Open(const std::string& path,
                                                      PagerOptions options = {});

  ~Pager();
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  bool mvcc_enabled() const { return mvcc_; }

  /// Number of pages in the file.
  PageId page_count() const { return page_count_.load(std::memory_order_acquire); }

  /// Allocates a fresh, zero-initialized page and returns its id. In MVCC
  /// mode the page starts as an unpublished working copy: readers pinned at
  /// earlier epochs see NotFound for it (semantically an empty page) until
  /// the allocating transaction publishes.
  netmark::Result<PageId> Allocate();

  /// Fetches a page for *writing* (the single mutator thread). In legacy
  /// mode this is the classic shared buffer, valid until the Pager dies. In
  /// MVCC mode it returns the private working copy, lazily cloned from the
  /// latest published version — readers never observe the returned bytes
  /// until Publish(). Returns Status::DataLoss for a quarantined page.
  netmark::Result<Page> Fetch(PageId id);

  /// Fetches an immutable version of a page for *reading*: the newest
  /// version tagged <= `epoch` (see kLatestEpoch / kWriterEpoch). Returns
  /// NotFound when the page was born after `epoch` (callers scan-skip),
  /// SnapshotTooOld when the version was dropped by the retention cap, and
  /// DataLoss for quarantined pages.
  netmark::Result<PageRef> FetchAt(PageId id, Epoch epoch);

  /// Marks a page dirty so the commit path stages it and Flush persists it.
  void MarkDirty(PageId id);

  /// MVCC commit point: stamps every dirty working copy's checksum and
  /// publishes it as the `epoch` version of its page, atomically with
  /// respect to FetchAt. Clean working copies (fetched but never
  /// MarkDirty'd) are discarded. No-op in legacy mode.
  void Publish(Epoch epoch);

  /// Drops published versions no longer visible to any pin in `pins`
  /// (sorted ascending; must include the current commit epoch). A version
  /// is kept while some pin falls between its epoch and its successor's,
  /// and whenever its successor was published after `cap` (the commit epoch
  /// observed *before* the caller scanned for pins — this makes a pin that
  /// raced the scan safe; see docs/mvcc.md). The newest version of each
  /// page is always kept. Returns the number of versions reclaimed.
  uint64_t ReclaimVersions(const std::vector<Epoch>& pins, Epoch cap);

  /// Writes all dirty pages to disk, stamping each v1 page's CRC trailer
  /// first. In MVCC mode only *published* bytes are written (working copies
  /// are invisible to Flush), preserving WAL-before-heap ordering. Every
  /// page is attempted even after a failure; a page whose write fails stays
  /// dirty for the next Flush, and the first error is returned.
  netmark::Status Flush();

  /// fdatasyncs the page file (call after a successful Flush to make a
  /// checkpoint durable).
  netmark::Status SyncToDisk();

  /// Pages dirtied since the previous call (sorted; cleared by the call).
  /// The commit path uses this to stage write-ahead-log images.
  std::vector<PageId> TakeDirtySinceMark();

  /// Upgrades every v0 page to the checksummed v1 format where possible
  /// (see PageTryUpgradeV1), loading uncached pages from disk. In MVCC mode
  /// the current published version is replaced by an upgraded clone under
  /// the same epoch tag (in-flight PageRefs keep the old buffer alive).
  /// Returns the ids whose persistent image changed so the caller can stage
  /// them on the WAL before the next flush. Quarantined pages are skipped.
  netmark::Result<std::vector<PageId>> UpgradeAllV0();

  /// Re-reads one page from disk and checks its CRC (the scrubber's probe).
  /// Returns false — and quarantines the page — when a fresh corruption was
  /// found; true when the page verified, was dirty (the on-disk copy is
  /// legitimately stale), was already quarantined, or is v0 (unverifiable).
  /// Read errors propagate as a Status without quarantining.
  netmark::Result<bool> VerifyOnDisk(PageId id);

  bool IsQuarantined(PageId id) const;
  /// Sorted ids of all quarantined pages.
  std::vector<PageId> QuarantinedPages() const;
  uint64_t quarantined_count() const;

  /// Count of pages read from disk (cache misses), for benchmarks.
  uint64_t pages_read() const { return pages_read_.load(std::memory_order_relaxed); }
  uint64_t pages_written() const {
    return pages_written_.load(std::memory_order_relaxed);
  }

  /// Published page versions currently held in memory (MVCC gauge).
  uint64_t retained_versions() const {
    return retained_versions_.load(std::memory_order_relaxed);
  }
  /// Total versions dropped by GC or the retention cap (MVCC counter).
  uint64_t versions_reclaimed() const {
    return versions_reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  /// One page's in-memory state. Legacy mode uses only `working` (the
  /// classic cache buffer). MVCC mode: `versions` holds the immutable
  /// published history (ascending epoch tags; the back is current) and
  /// `working` the writer's private copy, if any.
  struct Entry {
    std::shared_ptr<uint8_t[]> working;
    std::vector<std::pair<Epoch, std::shared_ptr<uint8_t[]>>> versions;
    /// Working copy was actually mutated (MarkDirty) — Publish keeps it.
    bool working_dirty = false;
    /// Persistent image is newer than the file — Flush must write it.
    bool disk_dirty = false;
    /// Epoch tag of the first version this page ever had; a reader below it
    /// gets NotFound ("born later"), a reader at/above it whose version is
    /// gone gets SnapshotTooOld (retention cap).
    Epoch first_tag = 0;
  };

  Pager(std::unique_ptr<netmark::File> file, PageId page_count,
        const PagerOptions& options)
      : file_(std::move(file)),
        verify_checksums_(options.verify_checksums),
        mvcc_(options.mvcc),
        max_retained_versions_(options.mvcc_max_retained_versions),
        page_count_(page_count) {}

  /// Loads (or finds) the Entry for `id`, reading and verifying from disk
  /// on a miss. Requires mu_ held.
  netmark::Result<Entry*> LoadEntryLocked(PageId id);
  /// Drops one published version (bookkeeping helper). Requires mu_ held.
  void DropVersionLocked(Entry& entry, size_t index);

  std::unique_ptr<netmark::File> file_;
  bool verify_checksums_;
  const bool mvcc_;
  const size_t max_retained_versions_;  // 0 = unlimited
  std::atomic<PageId> page_count_{0};
  /// Guards entries_/dirty_since_mark_/quarantined_ against concurrent
  /// readers.
  mutable std::mutex mu_;
  std::unordered_map<PageId, Entry> entries_;
  std::set<PageId> dirty_since_mark_;
  std::set<PageId> quarantined_;
  std::atomic<uint64_t> pages_read_{0};
  std::atomic<uint64_t> pages_written_{0};
  std::atomic<uint64_t> retained_versions_{0};
  std::atomic<uint64_t> versions_reclaimed_{0};
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_PAGER_H_
