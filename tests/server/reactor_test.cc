// Epoll-reactor serving tests: incremental framing across arbitrary TCP
// segment boundaries, pipelined requests, slow-loris 408s, drain with a
// half-parsed request parked in the reactor buffer — plus a parameterized
// suite that pins the externally observable contract (keep-alive, rotation,
// shedding, timeouts, drain) under BOTH connection models, so
// `reactor=threadpool` stays a faithful rollback path while it remains
// selectable.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "server/http_client.h"
#include "server/http_message.h"
#include "server/http_server.h"

namespace netmark::server {
namespace {

/// Blocking loopback socket connected to `port` (5s kernel timeouts so a
/// server bug fails the test instead of hanging it).
int Dial(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

void SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
}

/// Reads exactly one complete HTTP response off `fd` (leftover bytes stay
/// in `*carry` for the next call — the client side of pipelining).
std::string ReadOneResponse(int fd, std::string* carry) {
  size_t head_end = std::string::npos;
  char chunk[4096];
  size_t total;
  while ((total = CompleteMessageBytes(*carry, &head_end)) == 0) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return "";  // EOF/timeout: caller asserts on content
    carry->append(chunk, static_cast<size_t>(n));
  }
  std::string response = carry->substr(0, total);
  carry->erase(0, total);
  return response;
}

/// Reads until EOF (for close-delimited error responses like 408).
std::string ReadUntilEof(int fd) {
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  return raw;
}

TEST(ReactorFramingTest, RequestLineSplitAcrossThreeSegments) {
  HttpServer server([](const HttpRequest& req) {
    return HttpResponse::Ok(req.path);
  });
  ASSERT_TRUE(server.Start().ok());
  int fd = Dial(server.port());
  // Three segments, split mid-request-line and mid-header; the flushes plus
  // sleeps force separate recv()s (and separate epoll readiness events).
  SendAll(fd, "GET /seg");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  SendAll(fd, "mented HTTP/1.1\r\nHo");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  SendAll(fd, "st: x\r\nContent-Length: 0\r\n\r\n");
  std::string carry;
  std::string response = ReadOneResponse(fd, &carry);
  EXPECT_NE(response.find("200"), std::string::npos) << response;
  EXPECT_NE(response.find("/segmented"), std::string::npos) << response;
  ::close(fd);
  server.Stop();
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(server.read_timeouts(), 0u);
}

TEST(ReactorFramingTest, BodySplitAcrossSegments) {
  HttpServer server([](const HttpRequest& req) {
    return HttpResponse::Ok(req.body);
  });
  ASSERT_TRUE(server.Start().ok());
  int fd = Dial(server.port());
  SendAll(fd, "PUT /b HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\nhello");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  SendAll(fd, "world");
  std::string carry;
  std::string response = ReadOneResponse(fd, &carry);
  EXPECT_NE(response.find("helloworld"), std::string::npos) << response;
  ::close(fd);
  server.Stop();
}

TEST(ReactorFramingTest, TwoPipelinedRequestsInOneSegment) {
  std::atomic<int> handled{0};
  HttpServer server([&](const HttpRequest& req) {
    handled.fetch_add(1);
    return HttpResponse::Ok(req.path);
  });
  ASSERT_TRUE(server.Start().ok());
  int fd = Dial(server.port());
  // Both requests land in one send() — the reactor must dispatch the first,
  // keep the second buffered while the worker runs, and serve it from the
  // completion without waiting for more bytes from the client.
  SendAll(fd,
          "GET /first HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
          "GET /second HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  std::string carry;
  std::string first = ReadOneResponse(fd, &carry);
  std::string second = ReadOneResponse(fd, &carry);
  EXPECT_NE(first.find("/first"), std::string::npos) << first;
  EXPECT_NE(second.find("/second"), std::string::npos) << second;
  EXPECT_NE(first.find("keep-alive"), std::string::npos) << first;
  ::close(fd);
  server.Stop();
  EXPECT_EQ(handled.load(), 2);
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(server.keepalive_reuses(), 1u);
  EXPECT_EQ(server.connections_accepted(), 1u);
}

TEST(ReactorFramingTest, SlowLorisHeaderTrickleHits408) {
  HttpServerOptions options;
  options.read_timeout_ms = 150;
  options.idle_timeout_ms = 5000;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());
  int fd = Dial(server.port());
  // Keep bytes trickling so the connection is never idle — the read
  // deadline is anchored at the FIRST byte, so steady drips must not push
  // it out (the classic slow-loris hold-a-slot-forever attack).
  const std::string head = "GET /loris HTTP/1.1\r\nX-Drip: ";
  int64_t start = MonotonicMicros();
  for (size_t i = 0; i < head.size(); ++i) {
    ssize_t n = ::send(fd, head.data() + i, 1, MSG_NOSIGNAL);
    if (n <= 0) break;  // server already gave up on us — fine
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    if (MonotonicMicros() - start > 1000 * 1000) break;
  }
  std::string raw = ReadUntilEof(fd);
  ::close(fd);
  EXPECT_NE(raw.find("408"), std::string::npos) << raw;
  EXPECT_EQ(server.read_timeouts(), 1u);
  EXPECT_EQ(server.requests_served(), 0u);
  server.Stop();
}

TEST(ReactorFramingTest, DrainWithHalfParsedRequestInReactorBuffer) {
  HttpServerOptions options;
  options.read_timeout_ms = 5000;  // far beyond the drain grace window
  options.idle_timeout_ms = 5000;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());
  int fd = Dial(server.port());
  SendAll(fd, "GET /half HTTP/1.1\r\nHost: ");  // head never completes
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Stop() must not wait out the full 5s read deadline: the half-parsed
  // request gets only the clamped grace window, then a 408 and the close.
  int64_t stop_start = MonotonicMicros();
  server.Stop();
  int64_t stop_micros = MonotonicMicros() - stop_start;
  EXPECT_LT(stop_micros, 2 * 1000 * 1000) << "drain waited out a read deadline";

  std::string raw = ReadUntilEof(fd);
  ::close(fd);
  EXPECT_NE(raw.find("408"), std::string::npos) << raw;
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(ReactorFramingTest, OpenConnectionsGaugeTracksIdleSockets) {
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.open_connections(), 0);
  std::vector<int> fds;
  for (int i = 0; i < 5; ++i) fds.push_back(Dial(server.port()));
  // Idle connections (no request sent) must each cost one registration.
  for (int i = 0; i < 400 && server.open_connections() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.open_connections(), 5);
  EXPECT_GT(server.epoll_wakeups(), 0u);
  for (int fd : fds) ::close(fd);
  for (int i = 0; i < 400 && server.open_connections() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.open_connections(), 0);
  server.Stop();
}

TEST(ReactorModelParsingTest, ParsesAndRejects) {
  auto epoll = ParseReactorModel("epoll");
  ASSERT_TRUE(epoll.ok());
  EXPECT_EQ(*epoll, ReactorModel::kEpoll);
  auto pool = ParseReactorModel(" ThreadPool ");
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(*pool, ReactorModel::kThreadPool);
  EXPECT_FALSE(ParseReactorModel("select").ok());
  EXPECT_EQ(ReactorModelName(ReactorModel::kEpoll), "epoll");
  EXPECT_EQ(ReactorModelName(ReactorModel::kThreadPool), "threadpool");
}

/// The serving contract, pinned under both connection models: everything a
/// client (or the PR 5/8 tests) can observe must be identical whether the
/// bytes flow through the epoll reactor or the legacy worker pool.
class ReactorModelTest : public ::testing::TestWithParam<ReactorModel> {
 protected:
  HttpServerOptions Options() {
    HttpServerOptions options;
    options.reactor = GetParam();
    return options;
  }
};

TEST_P(ReactorModelTest, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server([](const HttpRequest& req) {
    return HttpResponse::Ok(std::string(req.query));
  }, Options());
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 10; ++i) {
    auto resp = client.Get("/q?n=" + std::to_string(i));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->body, "n=" + std::to_string(i));
    EXPECT_EQ(resp->Header("Connection"), "keep-alive");
  }
  EXPECT_EQ(server.connections_accepted(), 1u);
  EXPECT_EQ(server.keepalive_reuses(), 9u);
  EXPECT_EQ(server.requests_served(), 10u);
  server.Stop();
}

TEST_P(ReactorModelTest, MaxRequestsPerConnectionRotates) {
  HttpServerOptions options = Options();
  options.max_requests_per_connection = 3;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 7; ++i) {
    auto resp = client.Get("/r");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, 200);
  }
  EXPECT_EQ(client.connections_opened(), 3u);
  EXPECT_EQ(server.connections_accepted(), 3u);
  server.Stop();
}

TEST_P(ReactorModelTest, ShedsWith503AndRetryAfterWhenSaturated) {
  HttpServerOptions options = Options();
  options.worker_threads = 1;
  options.accept_queue_capacity = 1;
  std::atomic<bool> release{false};
  HttpServer server(
      [&](const HttpRequest&) {
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return HttpResponse::Ok("done");
      },
      options);
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> blocked;
  std::atomic<int> ok_count{0};
  auto spawn_blocked = [&] {
    blocked.emplace_back([&] {
      HttpClient client("127.0.0.1", server.port());
      auto resp = client.Get("/slow");
      if (resp.ok() && resp->status == 200) ok_count.fetch_add(1);
    });
  };
  spawn_blocked();
  for (int i = 0; i < 400 && server.active_connections() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.active_connections(), 1);
  spawn_blocked();
  for (int i = 0; i < 400 && server.connections_accepted() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  int shed_seen = 0;
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    auto resp = client.Get("/extra");
    if (resp.ok() && resp->status == 503) {
      ++shed_seen;
      EXPECT_EQ(resp->Header("Retry-After"), "1");
    }
  }
  EXPECT_GT(shed_seen, 0);
  EXPECT_GT(server.connections_shed(), 0u);
  release.store(true);
  for (std::thread& t : blocked) t.join();
  EXPECT_EQ(ok_count.load(), 2);
  server.Stop();
}

TEST_P(ReactorModelTest, StalledRequestGets408) {
  HttpServerOptions options = Options();
  options.read_timeout_ms = 150;
  options.idle_timeout_ms = 2000;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());
  int fd = Dial(server.port());
  SendAll(fd, "GET /stalled HTTP/1.1\r\n");
  std::string raw = ReadUntilEof(fd);
  ::close(fd);
  EXPECT_NE(raw.find("408"), std::string::npos) << raw;
  EXPECT_EQ(server.read_timeouts(), 1u);
  server.Stop();
}

TEST_P(ReactorModelTest, IdleConnectionIsReapedQuietly) {
  HttpServerOptions options = Options();
  options.idle_timeout_ms = 120;
  HttpServer server([](const HttpRequest&) { return HttpResponse::Ok("x"); },
                    options);
  ASSERT_TRUE(server.Start().ok());
  int fd = Dial(server.port());
  char chunk[64];
  ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  EXPECT_EQ(n, 0);  // quiet close: EOF, no bytes written
  ::close(fd);
  EXPECT_EQ(server.read_timeouts(), 0u);
  server.Stop();
}

TEST_P(ReactorModelTest, GracefulDrainFinishesInFlightRequest) {
  std::atomic<bool> handler_entered{false};
  HttpServer server(
      [&](const HttpRequest&) {
        handler_entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return HttpResponse::Ok("finished");
      },
      Options());
  ASSERT_TRUE(server.Start().ok());
  std::thread in_flight([&, port = server.port()] {
    HttpClient client("127.0.0.1", port);
    auto resp = client.Get("/slow");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->body, "finished");
    EXPECT_EQ(resp->Header("Connection"), "close");
  });
  while (!handler_entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  in_flight.join();
  EXPECT_EQ(server.requests_served(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    BothModels, ReactorModelTest,
    ::testing::Values(ReactorModel::kEpoll, ReactorModel::kThreadPool),
    [](const ::testing::TestParamInfo<ReactorModel>& info) {
      return std::string(ReactorModelName(info.param));
    });

}  // namespace
}  // namespace netmark::server
