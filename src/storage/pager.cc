#include "storage/pager.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace netmark::storage {

namespace {

std::shared_ptr<uint8_t[]> MakePageBuffer() {
  return std::shared_ptr<uint8_t[]>(new uint8_t[kPageSize]);
}

std::shared_ptr<uint8_t[]> ClonePageBuffer(const uint8_t* src) {
  auto buf = MakePageBuffer();
  std::memcpy(buf.get(), src, kPageSize);
  return buf;
}

}  // namespace

netmark::Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                                    PagerOptions options) {
  netmark::Env* env = options.env != nullptr ? options.env : netmark::Env::Default();
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<netmark::File> file,
                           env->OpenFile(path, /*create=*/true));
  NETMARK_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % kPageSize != 0) {
    return netmark::Status::Corruption(
        netmark::StringPrintf("page file %s has size %llu not a multiple of %zu",
                              path.c_str(), static_cast<unsigned long long>(size),
                              kPageSize));
  }
  auto count = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<Pager>(new Pager(std::move(file), count, options));
}

Pager::~Pager() { (void)Flush(); }

netmark::Result<PageId> Pager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (count == kInvalidPage) {
    return netmark::Status::CapacityExceeded("page file full: " + file_->path());
  }
  PageId id = count;
  auto buf = MakePageBuffer();
  std::memset(buf.get(), 0, kPageSize);
  Page(buf.get()).Init();
  Entry& entry = entries_[id];
  entry.working = std::move(buf);
  if (mvcc_) {
    // Born unpublished: readers pinned at earlier epochs resolve NotFound
    // (an empty page, semantically) until the transaction publishes.
    entry.working_dirty = true;
    entry.first_tag = kLatestEpoch;
  } else {
    entry.disk_dirty = true;
  }
  dirty_since_mark_.insert(id);
  page_count_.store(count + 1, std::memory_order_release);
  return id;
}

netmark::Result<Pager::Entry*> Pager::LoadEntryLocked(PageId id) {
  auto it = entries_.find(id);
  if (it != entries_.end()) return &it->second;
  if (quarantined_.count(id) != 0) {
    return netmark::Status::DataLoss(netmark::StringPrintf(
        "page %u of %s is quarantined (bad checksum)", id, file_->path().c_str()));
  }
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (id >= count) {
    return netmark::Status::InvalidArgument(
        netmark::StringPrintf("page %u out of range (%u pages)", id, count));
  }
  auto buf = MakePageBuffer();
  NETMARK_RETURN_NOT_OK(
      file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf.get()));
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  if (verify_checksums_ && !PageVerifyChecksum(buf.get())) {
    quarantined_.insert(id);
    return netmark::Status::DataLoss(netmark::StringPrintf(
        "page %u of %s failed checksum verification", id, file_->path().c_str()));
  }
  Entry& entry = entries_[id];
  if (mvcc_) {
    // Epoch 0 is the on-disk state at open (WAL recovery included).
    entry.versions.emplace_back(Epoch{0}, std::move(buf));
    retained_versions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    entry.working = std::move(buf);
  }
  return &entry;
}

netmark::Result<Page> Pager::Fetch(PageId id) {
  // The lock covers the map probe and (on a miss) the read + insert. A miss
  // therefore serializes concurrent callers briefly, but entries are never
  // evicted so the common case — cache hit — is one map lookup, and the
  // returned buffer stays stable after the lock is released.
  std::lock_guard<std::mutex> lock(mu_);
  NETMARK_ASSIGN_OR_RETURN(Entry * entry, LoadEntryLocked(id));
  if (mvcc_ && entry->working == nullptr) {
    // Copy-on-write point: the writer gets a private clone of the current
    // published version; readers keep seeing the published bytes until
    // Publish() swaps the clone in.
    entry->working = ClonePageBuffer(entry->versions.back().second.get());
  }
  return Page(entry->working.get());
}

netmark::Result<PageRef> Pager::FetchAt(PageId id, Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  NETMARK_ASSIGN_OR_RETURN(Entry * entry, LoadEntryLocked(id));
  if (!mvcc_ || epoch == kWriterEpoch) {
    if (entry->working != nullptr) return PageRef(entry->working);
    if (!entry->versions.empty()) return PageRef(entry->versions.back().second);
    return netmark::Status::Internal(
        netmark::StringPrintf("page %u has no buffer", id));
  }
  if (epoch == kLatestEpoch) {
    if (!entry->versions.empty()) return PageRef(entry->versions.back().second);
    return netmark::Status::NotFound(netmark::StringPrintf(
        "page %u of %s has no published version yet", id, file_->path().c_str()));
  }
  // Newest version tagged <= epoch: versions are sorted ascending by tag.
  const auto& versions = entry->versions;
  auto it = std::upper_bound(
      versions.begin(), versions.end(), epoch,
      [](Epoch e, const auto& version) { return e < version.first; });
  if (it == versions.begin()) {
    if (epoch < entry->first_tag) {
      return netmark::Status::NotFound(netmark::StringPrintf(
          "page %u of %s was born after epoch %llu", id, file_->path().c_str(),
          static_cast<unsigned long long>(epoch)));
    }
    return netmark::Status::SnapshotTooOld(netmark::StringPrintf(
        "page %u of %s: version for epoch %llu dropped by the retention cap",
        id, file_->path().c_str(), static_cast<unsigned long long>(epoch)));
  }
  return PageRef(std::prev(it)->second);
}

void Pager::MarkDirty(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[id];
  if (mvcc_) {
    entry.working_dirty = true;
  } else {
    entry.disk_dirty = true;
  }
  dirty_since_mark_.insert(id);
}

void Pager::DropVersionLocked(Entry& entry, size_t index) {
  entry.versions.erase(entry.versions.begin() +
                       static_cast<std::ptrdiff_t>(index));
  retained_versions_.fetch_sub(1, std::memory_order_relaxed);
  versions_reclaimed_.fetch_add(1, std::memory_order_relaxed);
}

void Pager::Publish(Epoch epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!mvcc_) return;
  for (auto& [id, entry] : entries_) {
    if (entry.working == nullptr) continue;
    if (!entry.working_dirty) {
      // Fetched (e.g. a free-space probe) but never mutated: drop the clone
      // rather than publishing a duplicate version.
      entry.working.reset();
      continue;
    }
    // Stamp before the buffer becomes visible — after this point it is
    // immutable. Flush then writes it verbatim.
    PageStampChecksum(entry.working.get());
    if (entry.versions.empty()) entry.first_tag = epoch;
    entry.versions.emplace_back(epoch, std::move(entry.working));
    entry.working = nullptr;
    entry.working_dirty = false;
    entry.disk_dirty = true;
    retained_versions_.fetch_add(1, std::memory_order_relaxed);
    if (max_retained_versions_ != 0) {
      while (entry.versions.size() > max_retained_versions_) {
        DropVersionLocked(entry, 0);
      }
    }
  }
}

uint64_t Pager::ReclaimVersions(const std::vector<Epoch>& pins, Epoch cap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!mvcc_) return 0;
  uint64_t reclaimed = 0;
  for (auto& [id, entry] : entries_) {
    auto& versions = entry.versions;
    if (versions.size() <= 1) continue;
    size_t kept = 0;
    for (size_t i = 0; i < versions.size(); ++i) {
      bool keep = (i + 1 == versions.size());  // current version always stays
      // A version superseded after the GC pass began (successor tag > cap)
      // stays: a reader may have pinned an epoch in that window after the
      // pin scan and would be missed by `pins` (see docs/mvcc.md).
      if (!keep) keep = versions[i + 1].first > cap;
      if (!keep) {
        // Version i serves pins in [tag_i, tag_{i+1}): keep it while one
        // exists.
        auto pin = std::lower_bound(pins.begin(), pins.end(), versions[i].first);
        keep = pin != pins.end() && *pin < versions[i + 1].first;
      }
      if (keep) {
        if (kept != i) versions[kept] = std::move(versions[i]);
        ++kept;
      } else {
        ++reclaimed;
      }
    }
    versions.resize(kept);
  }
  if (reclaimed != 0) {
    retained_versions_.fetch_sub(reclaimed, std::memory_order_relaxed);
    versions_reclaimed_.fetch_add(reclaimed, std::memory_order_relaxed);
  }
  return reclaimed;
}

std::vector<PageId> Pager::TakeDirtySinceMark() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> out(dirty_since_mark_.begin(), dirty_since_mark_.end());
  dirty_since_mark_.clear();
  return out;
}

netmark::Status Pager::Flush() {
  // Attempt every dirty page even after a failure so one bad write doesn't
  // strand the rest; the failing page stays dirty (it will be retried by the
  // next Flush) and the first error is propagated.
  netmark::Status first_error = netmark::Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, entry] : entries_) {
    if (!entry.disk_dirty) continue;
    uint8_t* buf = nullptr;
    if (mvcc_) {
      // Only published bytes reach the file; an unpublished working copy is
      // an uncommitted transaction and must never be flushed.
      if (entry.versions.empty()) continue;
      buf = entry.versions.back().second.get();
    } else {
      if (entry.working == nullptr) continue;
      buf = entry.working.get();
    }
    PageStampChecksum(buf);
    netmark::Status st =
        file_->Write(static_cast<uint64_t>(id) * kPageSize, buf, kPageSize);
    if (!st.ok()) {
      if (first_error.ok()) {
        first_error = st.WithContext(netmark::StringPrintf("write of page %u", id));
      }
      continue;  // page stays dirty
    }
    entry.disk_dirty = false;
    pages_written_.fetch_add(1, std::memory_order_relaxed);
  }
  return first_error;
}

netmark::Status Pager::SyncToDisk() { return file_->Sync(); }

netmark::Result<std::vector<PageId>> Pager::UpgradeAllV0() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PageId> upgraded;
  PageId count = page_count_.load(std::memory_order_relaxed);
  for (PageId id = 0; id < count; ++id) {
    if (quarantined_.count(id) != 0) continue;
    auto entry_or = LoadEntryLocked(id);
    if (!entry_or.ok()) {
      // A freshly quarantined page cannot be upgraded; skip it like the
      // scrubber does. Transient read errors still abort the scan.
      if (entry_or.status().IsDataLoss()) continue;
      return entry_or.status();
    }
    Entry* entry = *entry_or;
    if (!mvcc_) {
      // Legacy mode: upgrade the single buffer in place and mark it dirty
      // so the commit path stages + flushes it.
      if (PageTryUpgradeV1(entry->working.get())) {
        entry->disk_dirty = true;
        dirty_since_mark_.insert(id);
        upgraded.push_back(id);
      }
      continue;
    }
    if (entry->working != nullptr) {
      // The writer's private copy upgrades in place (it is unpublished, so
      // no reader can observe the shift).
      (void)PageTryUpgradeV1(entry->working.get());
    }
    if (entry->versions.empty()) continue;
    auto& current = entry->versions.back();
    if (PageVersion(current.second.get()) >= kPageFormatV1) continue;
    auto clone = ClonePageBuffer(current.second.get());
    if (PageTryUpgradeV1(clone.get())) {
      PageStampChecksum(clone.get());
      // Same epoch tag, new bytes: in-flight PageRefs keep the old buffer
      // alive; new readers see the (equivalent) v1 image.
      current.second = std::move(clone);
      entry->disk_dirty = true;
      dirty_since_mark_.insert(id);
      upgraded.push_back(id);
    }
  }
  return upgraded;
}

netmark::Result<bool> Pager::VerifyOnDisk(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (quarantined_.count(id) != 0) return true;  // already known bad
  PageId count = page_count_.load(std::memory_order_relaxed);
  if (id >= count) {
    return netmark::Status::InvalidArgument(
        netmark::StringPrintf("page %u out of range (%u pages)", id, count));
  }
  // A dirty page's on-disk copy is legitimately stale; so is a page that
  // was allocated but not yet published (nothing on disk at all). The lock
  // keeps Flush/Publish from racing this check.
  auto it = entries_.find(id);
  Entry* entry = it != entries_.end() ? &it->second : nullptr;
  if (entry != nullptr &&
      (entry->disk_dirty || (mvcc_ && entry->versions.empty() &&
                             entry->working != nullptr))) {
    return true;
  }
  uint8_t buf[kPageSize];
  NETMARK_RETURN_NOT_OK(
      file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize, buf));
  if (!PageVerifyChecksum(buf)) {
    bool have_authoritative_copy =
        entry != nullptr && (mvcc_ ? !entry->versions.empty()
                                   : entry->working != nullptr);
    if (have_authoritative_copy) {
      // The in-memory copy is authoritative and intact; the disk copy
      // rotted underneath it. Re-dirty the page so the next flush heals the
      // disk instead of quarantining data we still hold.
      entry->disk_dirty = true;
      dirty_since_mark_.insert(id);
      return false;
    }
    quarantined_.insert(id);
    return false;
  }
  return true;
}

bool Pager::IsQuarantined(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.count(id) != 0;
}

std::vector<PageId> Pager::QuarantinedPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<PageId>(quarantined_.begin(), quarantined_.end());
}

uint64_t Pager::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.size();
}

}  // namespace netmark::storage
