#include "common/backoff.h"

#include <gtest/gtest.h>

namespace netmark {
namespace {

TEST(BackoffTest, ExactScheduleWithoutJitter) {
  BackoffPolicy policy;
  policy.initial_ms = 50;
  policy.multiplier = 2.0;
  policy.max_ms = 1000;
  policy.jitter = 0.0;
  EXPECT_EQ(BackoffDelayMs(policy, 0, nullptr), 50);
  EXPECT_EQ(BackoffDelayMs(policy, 1, nullptr), 100);
  EXPECT_EQ(BackoffDelayMs(policy, 2, nullptr), 200);
  EXPECT_EQ(BackoffDelayMs(policy, 3, nullptr), 400);
  EXPECT_EQ(BackoffDelayMs(policy, 4, nullptr), 800);
  // Capped from here on.
  EXPECT_EQ(BackoffDelayMs(policy, 5, nullptr), 1000);
  EXPECT_EQ(BackoffDelayMs(policy, 20, nullptr), 1000);
}

TEST(BackoffTest, JitterStaysWithinBand) {
  BackoffPolicy policy;
  policy.initial_ms = 100;
  policy.multiplier = 2.0;
  policy.max_ms = 10000;
  policy.jitter = 0.5;
  Rng rng(42);
  for (int attempt = 0; attempt < 5; ++attempt) {
    int64_t base = 100ll << attempt;
    for (int i = 0; i < 100; ++i) {
      int64_t d = BackoffDelayMs(policy, attempt, &rng);
      EXPECT_GE(d, base / 2) << "attempt " << attempt;
      EXPECT_LE(d, base) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, SameSeedSameSchedule) {
  BackoffPolicy policy;
  policy.jitter = 1.0;
  Rng a(7), b(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(BackoffDelayMs(policy, attempt, &a),
              BackoffDelayMs(policy, attempt, &b));
  }
}

TEST(BackoffTest, NonePolicyNeverWaits) {
  BackoffPolicy policy = BackoffPolicy::None();
  Rng rng(1);
  EXPECT_EQ(BackoffDelayMs(policy, 0, &rng), 0);
  EXPECT_EQ(BackoffDelayMs(policy, 9, &rng), 0);
}

TEST(BackoffTest, HugeAttemptDoesNotOverflow) {
  BackoffPolicy policy;
  policy.initial_ms = 1;
  policy.multiplier = 10.0;
  policy.max_ms = 30000;
  policy.jitter = 0.0;
  // 10^1000 would overflow any integer; the cap must short-circuit.
  EXPECT_EQ(BackoffDelayMs(policy, 1000, nullptr), 30000);
}

}  // namespace
}  // namespace netmark
