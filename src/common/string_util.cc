#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace netmark {

namespace {
bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsAsciiSpace(s[b])) ++b;
  while (e > b && IsAsciiSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& part : Split(s, sep)) {
    std::string_view t = TrimView(part);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string_view t = TrimView(s);
  if (t.empty()) return Status::ParseError("empty integer");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string_view t = TrimView(s);
  if (t.empty()) return Status::ParseError("empty number");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("number out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in number: " + buf);
  }
  return v;
}

namespace {
int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<std::string> UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%') {
      if (i + 2 >= s.size()) return Status::ParseError("truncated percent escape");
      int hi = HexDigit(s[i + 1]);
      int lo = HexDigit(s[i + 2]);
      if (hi < 0 || lo < 0) return Status::ParseError("bad percent escape");
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += c;
    }
  }
  return out;
}

std::string UrlEncode(std::string_view s) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool unreserved = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
                      c == '~';
    if (unreserved) {
      out += c;
    } else if (c == ' ') {
      out += '+';
    } else {
      out += '%';
      out += kHex[static_cast<unsigned char>(c) >> 4];
      out += kHex[static_cast<unsigned char>(c) & 0xF];
    }
  }
  return out;
}

std::string NormalizeWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // swallow leading whitespace
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!in_space) out += ' ';
      in_space = true;
    } else {
      out += c;
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace netmark
