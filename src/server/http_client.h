// Blocking HTTP/1.1 client (loopback-oriented) plus the federation transport
// adapter.

#ifndef NETMARK_SERVER_HTTP_CLIENT_H_
#define NETMARK_SERVER_HTTP_CLIENT_H_

#include <string>

#include "common/result.h"
#include "federation/remote_source.h"
#include "server/http_message.h"

namespace netmark::server {

/// \brief One-request-per-connection HTTP client.
class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  netmark::Result<HttpResponse> Send(const HttpRequest& request) const;

  netmark::Result<HttpResponse> Get(const std::string& target) const;
  netmark::Result<HttpResponse> Put(const std::string& target,
                                    std::string body,
                                    std::string content_type = "text/plain") const;
  netmark::Result<HttpResponse> Delete(const std::string& target) const;
  netmark::Result<HttpResponse> Propfind(const std::string& target) const;

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  std::string host_;
  uint16_t port_;
};

/// \brief federation::HttpTransport over HttpClient — wires RemoteSource to
/// real sockets.
class SocketTransport : public federation::HttpTransport {
 public:
  SocketTransport(std::string host, uint16_t port)
      : client_(std::move(host), port) {}

  netmark::Result<std::string> Get(const std::string& path_and_query) override;

 private:
  HttpClient client_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_HTTP_CLIENT_H_
