#include "textindex/inverted_index.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

namespace netmark::textindex {

PreparedPostings PreparePostings(std::string_view text) {
  // Group positions per term so each term's postings list is touched once at
  // commit time. Tokenize emits positions in ascending order, so each group's
  // position list is already sorted and unique.
  std::map<std::string, std::vector<uint32_t>, std::less<>> grouped;
  for (Token& tok : Tokenize(text)) {
    grouped[std::move(tok.term)].push_back(tok.position);
  }
  PreparedPostings out;
  out.terms.reserve(grouped.size());
  for (auto& [term, positions] : grouped) {
    out.terms.emplace_back(term, std::move(positions));
  }
  return out;
}

InvertedIndex::InvertedIndex(InvertedIndex&& other) noexcept
    : postings_(std::move(other.postings_)), num_postings_(other.num_postings_) {
  other.num_postings_ = 0;
}

InvertedIndex& InvertedIndex::operator=(InvertedIndex&& other) noexcept {
  if (this != &other) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    postings_ = std::move(other.postings_);
    num_postings_ = other.num_postings_;
    other.num_postings_ = 0;
  }
  return *this;
}

void InvertedIndex::Add(DocKey key, std::string_view text) {
  AddPrepared(key, PreparePostings(text));
}

void InvertedIndex::AddPrepared(DocKey key, const PreparedPostings& prepared) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& [term, positions] : prepared.terms) {
    std::vector<Posting>& list = postings_[term];
    auto it = std::lower_bound(list.begin(), list.end(), key,
                               [](const Posting& p, DocKey k) { return p.key < k; });
    if (it != list.end() && it->key == key) {
      // Merge (re-add after partial update).
      it->positions.insert(it->positions.end(), positions.begin(), positions.end());
      std::sort(it->positions.begin(), it->positions.end());
      it->positions.erase(std::unique(it->positions.begin(), it->positions.end()),
                          it->positions.end());
    } else {
      list.insert(it, Posting{key, positions});
      ++num_postings_;
    }
  }
}

void InvertedIndex::Remove(DocKey key, std::string_view text) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const std::string& term : TokenizeTerms(text)) {
    auto map_it = postings_.find(term);
    if (map_it == postings_.end()) continue;
    std::vector<Posting>& list = map_it->second;
    auto it = std::lower_bound(list.begin(), list.end(), key,
                               [](const Posting& p, DocKey k) { return p.key < k; });
    if (it != list.end() && it->key == key) {
      list.erase(it);
      --num_postings_;
      if (list.empty()) postings_.erase(map_it);
    }
  }
}

const std::vector<Posting>* InvertedIndex::Find(std::string_view term) const {
  // Queries arrive in arbitrary case; the index stores folded terms.
  std::string folded;
  folded.reserve(term.size());
  for (char c : term) {
    folded += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  auto it = postings_.find(folded);
  return it == postings_.end() ? nullptr : &it->second;
}

std::vector<DocKey> InvertedIndex::LookupTermLocked(std::string_view term) const {
  std::vector<DocKey> out;
  const std::vector<Posting>* list = Find(term);
  if (list == nullptr) return out;
  out.reserve(list->size());
  for (const Posting& p : *list) out.push_back(p.key);
  return out;
}

std::vector<DocKey> InvertedIndex::LookupTerm(std::string_view term) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return LookupTermLocked(term);
}

std::vector<DocKey> InvertedIndex::MatchAll(const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<DocKey> acc = LookupTermLocked(terms[0]);
  for (size_t i = 1; i < terms.size() && !acc.empty(); ++i) {
    std::vector<DocKey> next = LookupTermLocked(terms[i]);
    std::vector<DocKey> merged;
    std::set_intersection(acc.begin(), acc.end(), next.begin(), next.end(),
                          std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

std::vector<DocKey> InvertedIndex::MatchAny(const std::vector<std::string>& terms) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<DocKey> acc;
  for (const std::string& term : terms) {
    std::vector<DocKey> next = LookupTermLocked(term);
    std::vector<DocKey> merged;
    std::set_union(acc.begin(), acc.end(), next.begin(), next.end(),
                   std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

std::vector<DocKey> InvertedIndex::MatchPhrase(
    const std::vector<std::string>& words) const {
  if (words.empty()) return {};
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (words.size() == 1) return LookupTermLocked(words[0]);
  // Gather postings lists; bail if any word is absent.
  std::vector<const std::vector<Posting>*> lists;
  for (const std::string& w : words) {
    const std::vector<Posting>* list = Find(w);
    if (list == nullptr) return {};
    lists.push_back(list);
  }
  // Intersect keys, then check consecutive positions.
  std::vector<DocKey> out;
  for (const Posting& first : *lists[0]) {
    bool match_key = true;
    std::vector<const Posting*> entries = {&first};
    for (size_t i = 1; i < lists.size(); ++i) {
      auto it = std::lower_bound(lists[i]->begin(), lists[i]->end(), first.key,
                                 [](const Posting& p, DocKey k) { return p.key < k; });
      if (it == lists[i]->end() || it->key != first.key) {
        match_key = false;
        break;
      }
      entries.push_back(&*it);
    }
    if (!match_key) continue;
    // For each start position of the first word, require word i at start+i.
    for (uint32_t start : first.positions) {
      bool phrase = true;
      for (size_t i = 1; i < entries.size(); ++i) {
        const std::vector<uint32_t>& pos = entries[i]->positions;
        if (!std::binary_search(pos.begin(), pos.end(),
                                start + static_cast<uint32_t>(i))) {
          phrase = false;
          break;
        }
      }
      if (phrase) {
        out.push_back(first.key);
        break;
      }
    }
  }
  return out;
}

std::vector<DocKey> InvertedIndex::MatchPrefix(std::string_view prefix) const {
  std::string folded;
  folded.reserve(prefix.size());
  for (char c : prefix) {
    folded += (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<DocKey> acc;
  for (auto it = postings_.lower_bound(folded); it != postings_.end(); ++it) {
    if (it->first.compare(0, folded.size(), folded) != 0) break;
    std::vector<DocKey> keys;
    keys.reserve(it->second.size());
    for (const Posting& p : it->second) keys.push_back(p.key);
    std::vector<DocKey> merged;
    std::set_union(acc.begin(), acc.end(), keys.begin(), keys.end(),
                   std::back_inserter(merged));
    acc = std::move(merged);
  }
  return acc;
}

void InvertedIndex::Visit(
    const std::function<void(const std::string&, const std::vector<Posting>&)>& fn)
    const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [term, postings] : postings_) fn(term, postings);
}

void InvertedIndex::RestoreTerm(std::string term, std::vector<Posting> postings) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  num_postings_ += postings.size();
  postings_.emplace(std::move(term), std::move(postings));
}

}  // namespace netmark::textindex
