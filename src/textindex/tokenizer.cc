#include "textindex/tokenizer.h"

namespace netmark::textindex {

namespace {
bool IsTermChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c >= 0x80;
}
char FoldCase(unsigned char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<char>(c - 'A' + 'a');
  return static_cast<char>(c);
}
}  // namespace

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> out;
  uint32_t position = 0;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsTermChar(static_cast<unsigned char>(text[i]))) ++i;
    if (i >= text.size()) break;
    std::string term;
    while (i < text.size() && IsTermChar(static_cast<unsigned char>(text[i]))) {
      term += FoldCase(static_cast<unsigned char>(text[i]));
      ++i;
    }
    out.push_back(Token{std::move(term), position++});
  }
  return out;
}

std::vector<std::string> TokenizeTerms(std::string_view text) {
  std::vector<std::string> out;
  for (Token& t : Tokenize(text)) out.push_back(std::move(t.term));
  return out;
}

}  // namespace netmark::textindex
