// Minimal HTTP/1.1 server over POSIX sockets.
//
// Connection model: accept loop on a background thread, one request per
// connection (Connection: close) handled by a small worker pool. This is
// deliberately lean — NETMARK's thesis is that the middleware tier should be
// thin — while still exercising a real network round trip in tests and
// benchmarks.

#ifndef NETMARK_SERVER_HTTP_SERVER_H_
#define NETMARK_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/http_message.h"

namespace netmark::server {

/// Request handler: pure function of the request.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

/// \brief Loopback HTTP server.
class HttpServer {
 public:
  explicit HttpServer(Handler handler) : handler_(std::move(handler)) {}
  ~HttpServer() { Stop(); }
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  netmark::Status Start(uint16_t port = 0);
  /// Stops accepting and joins all threads. Idempotent.
  void Stop();

  /// Bound port (valid after Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  /// Requests served since Start (benchmarks).
  uint64_t requests_served() const { return requests_served_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::thread accept_thread_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_HTTP_SERVER_H_
