#include "federation/router.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/work_queue.h"
#include "observability/thread_trace.h"
#include "textindex/text_query.h"

namespace netmark::federation {

namespace {

void DefaultSleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Decomposes `query` per `source` capability: full push-down when the source
/// can evaluate everything, otherwise push the supported sub-query and
/// augment the remainder locally (the paper's Context=Title&Content=Engine
/// walk-through against the Lessons Learned server).
netmark::Result<std::vector<FederatedHit>> ExecuteSubQuery(
    Source* source, const query::XdbQuery& query, const CallContext& ctx,
    QueryStats* stats) {
  Capabilities caps = source->capabilities();
  const bool needs_context = !query.context.empty();
  bool needs_phrase = false;
  {
    textindex::TextQuery parsed = textindex::ParseTextQuery(query.content);
    for (const textindex::QueryClause& clause : parsed.clauses) {
      if (clause.kind == textindex::QueryClause::Kind::kPhrase) needs_phrase = true;
    }
  }

  if ((!needs_context || caps.context_search) &&
      (query.content.empty() || caps.content_search) &&
      (!needs_phrase || caps.phrase_search)) {
    // Full push-down.
    ++stats->pushed_down_full;
    NETMARK_ASSIGN_OR_RETURN(std::vector<FederatedHit> hits,
                             source->Execute(query, ctx));
    stats->raw_hits += hits.size();
    return hits;
  }

  // Capability-limited source: push down the supported sub-query, augment
  // the remainder locally.
  ++stats->augmented;
  query::XdbQuery pushed;
  pushed.limit = 0;  // fetch everything; we filter locally
  if (caps.content_search) {
    // Best effort: if the user gave a content key push that; otherwise use
    // the context key as a content probe (documents mentioning the heading
    // words are the superset we refine).
    pushed.content = !query.content.empty() ? query.content : query.context;
  } else {
    return netmark::Status::Unavailable("source " + source->name() +
                                        " supports no usable search capability");
  }
  NETMARK_ASSIGN_OR_RETURN(std::vector<FederatedHit> raw,
                           source->Execute(pushed, ctx));
  stats->raw_hits += raw.size();

  textindex::TextQuery context_query = textindex::ParseTextQuery(query.context);
  textindex::TextQuery content_query = textindex::ParseTextQuery(query.content);
  std::vector<FederatedHit> out;
  for (FederatedHit& hit : raw) {
    if (!needs_context) {
      // Content-only query: re-verify phrases the source degraded.
      if (!content_query.empty() && !textindex::Matches(content_query, hit.text)) {
        continue;
      }
      out.push_back(std::move(hit));
      continue;
    }
    // Context clause: extract sections from the returned markup and keep the
    // ones whose heading matches (and whose body satisfies the content key).
    if (hit.markup.empty()) continue;
    auto sections = ExtractSectionsFromMarkup(hit.markup);
    if (!sections.ok()) continue;  // unparseable remote payload: skip the hit
    for (DomSection& section : *sections) {
      if (!textindex::Matches(context_query, section.heading)) continue;
      if (!content_query.empty()) {
        std::string scope = section.heading + " " + section.text;
        if (!textindex::Matches(content_query, scope)) continue;
      }
      FederatedHit refined;
      refined.doc_id = hit.doc_id;
      refined.file_name = hit.file_name;
      refined.heading = std::move(section.heading);
      refined.text = std::move(section.text);
      refined.markup = std::move(section.markup);
      out.push_back(std::move(refined));
    }
  }
  return out;
}

/// One fan-out unit: everything a worker needs, with shared ownership of the
/// source, breaker, and trace so a straggler outliving its query stays safe.
struct Job {
  size_t index = 0;
  std::shared_ptr<Source> source;
  SourcePolicy policy;  // resolved: max_retries >= 0
  netmark::BackoffPolicy backoff;
  std::shared_ptr<CircuitBreaker> breaker;
  uint64_t rng_seed = 0;
  std::shared_ptr<observability::Trace> trace;  // null = untraced
  int parent_span = -1;
  observability::Histogram* latency_hist = nullptr;  // per-source latency
};

struct Slot {
  bool done = false;
  int attempts_started = 0;  // updated as attempts begin (for timeout reports)
  SourceOutcome outcome;
  std::vector<FederatedHit> hits;
  QueryStats stats;  // this source's contribution
};

/// State shared between the query thread and its workers. Outlives the query
/// via shared_ptr when a deadline abandons stragglers.
struct FanOutState {
  explicit FanOutState(size_t n, size_t queue_capacity)
      : slots(n), queue(queue_capacity) {}
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;
  std::vector<Slot> slots;
  netmark::WorkQueue<Job> queue;
};

bool IsRetryable(const netmark::Status& status) {
  // Transient: connection refused/reset (Unavailable, which also carries
  // HTTP 5xx) and truncated bodies (IOError). Never parse errors — the
  // payload arrived and is simply bad — and never the query deadline.
  return status.IsUnavailable() || status.IsIOError();
}

/// Runs one source to completion (retry loop) and publishes its slot.
void RunJob(Job job, const query::XdbQuery& query, const CallContext& ctx,
            const std::function<void(int64_t)>& sleep_ms,
            const std::shared_ptr<FanOutState>& state,
            const std::function<void(const Slot&)>& add_cumulative) {
  const int64_t start = netmark::MonotonicMicros();
  observability::ScopedSpan span(job.trace.get(),
                                 "source:" + job.source->name(),
                                 job.parent_span);
  const CallContext traced_ctx = ctx.WithSpan(job.trace.get(), span.id());
  // Bind the trace to this fan-out worker so layers below the Source API
  // (result-cache probe, WAL) can attach spans under source:*.
  observability::ThreadTraceScope thread_trace(job.trace.get(), span.id());
  netmark::Rng rng(job.rng_seed);
  Slot local;
  local.outcome.source = job.source->name();
  netmark::Status last = netmark::Status::OK();
  bool ok = false;

  const int max_attempts = job.policy.max_retries + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    {
      // Publish the attempt count so a deadline report can say how far the
      // source got.
      std::lock_guard<std::mutex> lock(state->mu);
      state->slots[job.index].attempts_started = attempt + 1;
    }
    local.outcome.attempts = attempt + 1;
    if (traced_ctx.expired()) {
      last = netmark::Status::DeadlineExceeded("query deadline expired");
      break;
    }
    if (attempt > 0) ++local.stats.retries;
    CallContext attempt_ctx = traced_ctx.Tightened(job.policy.timeout_ms);
    auto result = ExecuteSubQuery(job.source.get(), query, attempt_ctx,
                                  &local.stats);
    const int64_t now = netmark::MonotonicMicros();
    if (result.ok()) {
      job.breaker->RecordSuccess(now);
      local.hits = std::move(*result);
      ok = true;
      break;
    }
    last = result.status();
    job.breaker->RecordFailure(now);
    bool retryable = IsRetryable(last);
    // A per-attempt timeout (tighter than the query deadline) is transient
    // too, as long as overall budget remains.
    if (last.IsDeadlineExceeded() && job.policy.timeout_ms > 0 &&
        !traced_ctx.expired()) {
      retryable = true;
    }
    if (!retryable || attempt + 1 >= max_attempts) break;
    int64_t delay = BackoffDelayMs(job.backoff, attempt, &rng);
    if (traced_ctx.bounded() && traced_ctx.remaining_ms() <= delay) {
      // Not enough budget left to wait out the backoff and try again.
      last = netmark::Status::DeadlineExceeded(
          "deadline precludes retry after: " + last.ToString());
      break;
    }
    if (delay > 0) sleep_ms(delay);
  }

  if (ok) {
    local.outcome.state = SourceState::kOk;
  } else if (last.IsDeadlineExceeded() || traced_ctx.expired()) {
    local.outcome.state = SourceState::kTimedOut;
    local.stats.source_timeouts = 1;
    local.outcome.error = last.ToString();
  } else {
    local.outcome.state = SourceState::kFailed;
    local.stats.source_failures = 1;
    local.outcome.error = last.ToString();
  }
  local.outcome.hits = local.hits.size();
  local.outcome.latency_micros = netmark::MonotonicMicros() - start;
  local.done = true;

  if (job.latency_hist != nullptr) {
    job.latency_hist->Observe(local.outcome.latency_micros);
  }
  span.Annotate("attempts", std::to_string(local.outcome.attempts));
  span.Annotate("hits", std::to_string(local.outcome.hits));
  span.Annotate("state", std::string(SourceStateToString(local.outcome.state)));
  span.End(ok, ok ? "" : local.outcome.error);

  add_cumulative(local);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    Slot& slot = state->slots[job.index];
    int started = slot.attempts_started;
    slot = std::move(local);
    slot.attempts_started = started;
    ++state->done;
  }
  state->cv.notify_all();
}

}  // namespace

std::string_view SourceStateToString(SourceState state) {
  switch (state) {
    case SourceState::kOk:
      return "ok";
    case SourceState::kTimedOut:
      return "timed-out";
    case SourceState::kFailed:
      return "failed";
    case SourceState::kBreakerOpen:
      return "breaker-open";
  }
  return "unknown";
}

Router::Router(RouterOptions options) : options_(std::move(options)) {
  owned_metrics_ = std::make_unique<observability::MetricsRegistry>();
  metrics_ = owned_metrics_.get();
  BindHandles();
}

void Router::BindHandles() {
  auto handles = std::make_shared<MetricHandles>();
  handles->queries = metrics_->GetCounter("netmark_federation_queries_total");
  handles->sources_queried =
      metrics_->GetCounter("netmark_federation_sources_queried_total");
  handles->pushed_down_full =
      metrics_->GetCounter("netmark_federation_pushed_down_full_total");
  handles->augmented = metrics_->GetCounter("netmark_federation_augmented_total");
  handles->raw_hits = metrics_->GetCounter("netmark_federation_raw_hits_total");
  handles->final_hits = metrics_->GetCounter("netmark_federation_final_hits_total");
  handles->retries = metrics_->GetCounter("netmark_federation_retries_total");
  handles->source_failures =
      metrics_->GetCounter("netmark_federation_source_failures_total");
  handles->source_timeouts =
      metrics_->GetCounter("netmark_federation_source_timeouts_total");
  handles->breaker_skips =
      metrics_->GetCounter("netmark_federation_breaker_skips_total");
  handles->query_micros =
      metrics_->GetHistogram("netmark_federation_query_micros");
  handles_ = std::move(handles);
}

void Router::BindSourceMetrics(Entry& entry, const std::string& name) {
  entry.latency = metrics_->GetHistogram("netmark_federation_source_micros",
                                         {{"source", name}});
  // Callback holds shared breaker ownership: safe even if the source set
  // ever changed while the registry outlived this entry.
  std::shared_ptr<CircuitBreaker> breaker = entry.breaker;
  metrics_->SetCallbackGauge(
      "netmark_breaker_state", {{"source", name}}, [breaker]() -> double {
        switch (breaker->state(netmark::MonotonicMicros())) {
          case CircuitBreaker::State::kClosed:
            return 0;
          case CircuitBreaker::State::kHalfOpen:
            return 1;
          case CircuitBreaker::State::kOpen:
            return 2;
        }
        return -1;
      });
}

void Router::BindMetrics(observability::MetricsRegistry* registry) {
  if (registry == nullptr || registry == metrics_) return;
  // owned_metrics_ stays alive: in-flight workers hold the old handle block
  // (shared_ptr) whose pointers live in the old registry.
  metrics_ = registry;
  BindHandles();
  for (auto& [name, entry] : sources_) BindSourceMetrics(entry, name);
}

netmark::Status Router::RegisterSource(std::shared_ptr<Source> source) {
  return RegisterSource(std::move(source), SourcePolicy{});
}

netmark::Status Router::RegisterSource(std::shared_ptr<Source> source,
                                       const SourcePolicy& policy) {
  const std::string& name = source->name();
  if (sources_.count(name) != 0) {
    return netmark::Status::AlreadyExists("source " + name + " already registered");
  }
  Entry entry;
  entry.policy = policy;
  entry.breaker = std::make_shared<CircuitBreaker>(
      policy.breaker.has_value() ? *policy.breaker : options_.breaker, name);
  entry.source = std::move(source);
  BindSourceMetrics(entry, name);
  sources_[name] = std::move(entry);
  return netmark::Status::OK();
}

netmark::Status Router::DefineDatabank(const std::string& name,
                                       std::vector<std::string> source_names) {
  if (databanks_.count(name) != 0) {
    return netmark::Status::AlreadyExists("databank " + name + " already defined");
  }
  if (source_names.empty()) {
    return netmark::Status::InvalidArgument("databank " + name + " needs sources");
  }
  for (const std::string& src : source_names) {
    if (sources_.count(src) == 0) {
      return netmark::Status::NotFound("databank " + name +
                                       " references unknown source " + src);
    }
  }
  databanks_[name] = Databank{name, std::move(source_names)};
  return netmark::Status::OK();
}

std::vector<std::string> Router::DatabankNames() const {
  std::vector<std::string> out;
  for (const auto& [name, bank] : databanks_) out.push_back(name);
  return out;
}

std::vector<std::string> Router::SourceNames() const {
  std::vector<std::string> out;
  for (const auto& [name, src] : sources_) out.push_back(name);
  return out;
}

Source* Router::GetSource(const std::string& name) {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.source.get();
}

CircuitBreaker* Router::GetBreaker(const std::string& name) {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.breaker.get();
}

netmark::Result<FederatedResult> Router::QueryFederated(
    const std::string& databank, const query::XdbQuery& query) {
  return QueryFederated(databank, query, nullptr, -1);
}

netmark::Result<FederatedResult> Router::QueryFederated(
    const std::string& databank, const query::XdbQuery& query,
    std::shared_ptr<observability::Trace> trace, int parent_span) {
  auto bank_it = databanks_.find(databank);
  if (bank_it == databanks_.end()) {
    return netmark::Status::NotFound("no databank " + databank);
  }
  const std::vector<std::string>& names = bank_it->second.source_names;
  const uint64_t query_id = query_counter_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<MetricHandles> handles = handles_;
  handles->queries->Increment();
  observability::ScopedTimer query_timer(handles->query_micros);
  observability::ScopedSpan fed_span(trace.get(), "federated", parent_span);
  fed_span.Annotate("databank", databank);

  const int64_t timeout_ms =
      query.timeout_ms != 0 ? query.timeout_ms : options_.default_timeout_ms;
  const CallContext ctx = timeout_ms > 0 ? CallContext::WithTimeoutMs(timeout_ms)
                                         : CallContext::Unbounded();

  auto state = std::make_shared<FanOutState>(names.size(),
                                             names.size() == 0 ? 1 : names.size());
  std::vector<Job> jobs;
  jobs.reserve(names.size());
  size_t breaker_skips = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    const Entry& entry = sources_.at(names[i]);
    Slot& slot = state->slots[i];
    slot.outcome.source = names[i];
    if (!entry.breaker->Allow(netmark::MonotonicMicros())) {
      slot.outcome.state = SourceState::kBreakerOpen;
      slot.outcome.error = "circuit breaker open (cooling down)";
      slot.stats.breaker_skips = 1;
      slot.done = true;
      ++state->done;
      ++breaker_skips;
      continue;
    }
    Job job;
    job.index = i;
    job.source = entry.source;
    job.policy = entry.policy;
    if (job.policy.max_retries < 0) job.policy.max_retries = options_.max_retries;
    if (job.policy.max_retries < 0) job.policy.max_retries = 0;
    job.backoff = options_.backoff;
    job.breaker = entry.breaker;
    // Distinct, reproducible jitter stream per (query, source).
    job.rng_seed = options_.rng_seed ^ (query_id * 0x9E3779B97F4A7C15ULL) ^
                   (static_cast<uint64_t>(i) << 17);
    job.trace = trace;
    job.parent_span = fed_span.id();
    job.latency_hist = entry.latency;
    jobs.push_back(std::move(job));
  }

  handles->sources_queried->Increment(names.size());
  handles->breaker_skips->Increment(breaker_skips);

  if (!jobs.empty()) {
    for (Job& job : jobs) state->queue.Push(std::move(job));
    state->queue.Close();

    std::function<void(int64_t)> sleep_ms =
        options_.sleep_ms ? options_.sleep_ms : DefaultSleepMs;
    auto add_cumulative = [handles](const Slot& slot) {
      handles->pushed_down_full->Increment(slot.stats.pushed_down_full);
      handles->augmented->Increment(slot.stats.augmented);
      handles->raw_hits->Increment(slot.stats.raw_hits);
      handles->retries->Increment(slot.stats.retries);
      handles->source_failures->Increment(slot.stats.source_failures);
      handles->source_timeouts->Increment(slot.stats.source_timeouts);
    };
    const size_t workers = std::min<size_t>(
        jobs.size(), static_cast<size_t>(std::max(options_.max_parallel_sources, 1)));
    const query::XdbQuery query_copy = query;
    for (size_t w = 0; w < workers; ++w) {
      reaper_.Launch([state, ctx, query_copy, sleep_ms, add_cumulative] {
        while (auto job = state->queue.Pop()) {
          RunJob(std::move(*job), query_copy, ctx, sleep_ms, state,
                 add_cumulative);
        }
      });
    }
  }

  // Wait for all sources — or the deadline, whichever is first. Stragglers
  // keep running on reaper threads and report into the cumulative counters
  // (and the breaker) when they finish; this query stops paying for them.
  FederatedResult result;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    auto all_done = [&] { return state->done == state->slots.size(); };
    if (ctx.bounded()) {
      std::chrono::steady_clock::time_point deadline{
          std::chrono::microseconds(ctx.deadline_micros)};
      state->cv.wait_until(lock, deadline, all_done);
    } else {
      state->cv.wait(lock, all_done);
    }
    result.sources.reserve(state->slots.size());
    for (Slot& slot : state->slots) {
      if (slot.done) {
        result.stats.pushed_down_full += slot.stats.pushed_down_full;
        result.stats.augmented += slot.stats.augmented;
        result.stats.raw_hits += slot.stats.raw_hits;
        result.stats.retries += slot.stats.retries;
        result.stats.source_failures += slot.stats.source_failures;
        result.stats.source_timeouts += slot.stats.source_timeouts;
        result.stats.breaker_skips += slot.stats.breaker_skips;
        result.sources.push_back(slot.outcome);
        if (slot.outcome.state == SourceState::kOk) {
          // Hits are merged below in declaration order; move them out while
          // the lock protects the slot.
          std::vector<FederatedHit> hits = std::move(slot.hits);
          slot.hits.clear();
          for (FederatedHit& hit : hits) {
            hit.source = slot.outcome.source;
            result.hits.push_back(std::move(hit));
          }
        }
      } else {
        // Deadline fired with this source still in flight.
        SourceOutcome timed_out;
        timed_out.source = slot.outcome.source;
        timed_out.state = SourceState::kTimedOut;
        timed_out.attempts = slot.attempts_started;
        timed_out.latency_micros = timeout_ms * 1000;
        timed_out.error = "deadline exceeded before source responded";
        result.sources.push_back(std::move(timed_out));
        ++result.stats.source_timeouts;
      }
    }
  }
  result.stats.sources_queried = names.size();

  // Deterministic merge: hits were appended in declaration order (slots are
  // scanned in order), so a stable sort by doc_id within each source block is
  // equivalent to ordering by (declaration index, doc_id).
  {
    std::map<std::string, size_t> decl_order;
    for (size_t i = 0; i < names.size(); ++i) decl_order.emplace(names[i], i);
    std::stable_sort(result.hits.begin(), result.hits.end(),
                     [&decl_order](const FederatedHit& a, const FederatedHit& b) {
                       size_t oa = decl_order.at(a.source);
                       size_t ob = decl_order.at(b.source);
                       if (oa != ob) return oa < ob;
                       return a.doc_id < b.doc_id;
                     });
  }
  if (query.limit != 0 && result.hits.size() > query.limit) {
    result.hits.resize(query.limit);
  }
  result.stats.final_hits = result.hits.size();
  handles->final_hits->Increment(result.hits.size());

  fed_span.Annotate("sources", std::to_string(names.size()));
  fed_span.Annotate("hits", std::to_string(result.hits.size()));
  fed_span.End(result.complete(),
               result.complete() ? "" : "partial (degraded sources)");

  // Opportunistically join workers that already finished.
  reaper_.Reap();
  return result;
}

netmark::Result<std::vector<FederatedHit>> Router::Query(
    const std::string& databank, const query::XdbQuery& query) {
  NETMARK_ASSIGN_OR_RETURN(FederatedResult result, QueryFederated(databank, query));
  return std::move(result.hits);
}

Router::Stats Router::stats() const {
  std::shared_ptr<MetricHandles> handles = handles_;
  Stats out;
  out.sources_queried = handles->sources_queried->value();
  out.pushed_down_full = handles->pushed_down_full->value();
  out.augmented = handles->augmented->value();
  out.raw_hits = handles->raw_hits->value();
  out.final_hits = handles->final_hits->value();
  out.retries = handles->retries->value();
  out.source_failures = handles->source_failures->value();
  out.source_timeouts = handles->source_timeouts->value();
  out.breaker_skips = handles->breaker_skips->value();
  return out;
}

}  // namespace netmark::federation
