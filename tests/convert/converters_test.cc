#include <gtest/gtest.h>

#include "convert/csv_converter.h"
#include "convert/html_converter.h"
#include "convert/markdown_converter.h"
#include "convert/nrt_converter.h"
#include "convert/text_converter.h"
#include "federation/augment.h"
#include "xml/serializer.h"

namespace netmark::convert {
namespace {

ConvertContext Ctx(const std::string& name) {
  ConvertContext ctx;
  ctx.file_name = name;
  return ctx;
}

// Extracted sections make converter assertions format-independent.
std::vector<federation::DomSection> Sections(const xml::Document& doc) {
  return federation::ExtractSections(doc);
}

TEST(TextConverterTest, InfersSectionsFromHeadingLines) {
  TextConverter conv;
  auto doc = conv.Convert(
      "INTRODUCTION\n"
      "Seamless access is hard.\n"
      "Still the intro.\n"
      "\n"
      "2. Budget Summary\n"
      "The budget is 100 thousand.\n",
      Ctx("report.txt"));
  ASSERT_TRUE(doc.ok());
  auto sections = Sections(*doc);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].heading, "INTRODUCTION");
  EXPECT_NE(sections[0].text.find("Seamless access"), std::string::npos);
  EXPECT_EQ(sections[1].heading, "2. Budget Summary");
  EXPECT_NE(sections[1].text.find("100 thousand"), std::string::npos);
}

TEST(TextConverterTest, PreambleBeforeFirstHeadingKept) {
  TextConverter conv;
  auto doc = conv.Convert("plain preamble text here.\n\nOVERVIEW\nbody\n",
                          Ctx("x.txt"));
  ASSERT_TRUE(doc.ok());
  std::string all = doc->TextContent(doc->root());
  EXPECT_NE(all.find("plain preamble"), std::string::npos);
}

TEST(TextConverterTest, EmitsProvenanceMeta) {
  TextConverter conv;
  auto doc = conv.Convert("hello world.\n", Ctx("prov.txt"));
  ASSERT_TRUE(doc.ok());
  std::string xml = xml::Serialize(*doc);
  EXPECT_NE(xml.find("netmark:meta"), std::string::npos);
  EXPECT_NE(xml.find("prov.txt"), std::string::npos);
}

TEST(MarkdownConverterTest, HeadingsListsEmphasisCode) {
  MarkdownConverter conv;
  auto doc = conv.Convert(
      "# Risk Assessment\n"
      "\n"
      "Memo about **thermal** risks with `code`.\n"
      "\n"
      "## Mitigation\n"
      "\n"
      "- first item\n"
      "- second *emphasized* item\n"
      "\n"
      "```\nraw code block\n```\n",
      Ctx("memo.md"));
  ASSERT_TRUE(doc.ok());
  auto sections = Sections(*doc);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].heading, "Risk Assessment");
  EXPECT_EQ(sections[1].heading, "Mitigation");
  std::string markup = xml::Serialize(*doc);
  EXPECT_NE(markup.find("<b>thermal</b>"), std::string::npos);
  EXPECT_NE(markup.find("<code>code</code>"), std::string::npos);
  EXPECT_NE(markup.find("<li>first item</li>"), std::string::npos);
  EXPECT_NE(markup.find("<em>emphasized</em>"), std::string::npos);
  EXPECT_NE(markup.find("raw code block"), std::string::npos);
}

TEST(HtmlConverterTest, ParsesMessyHtmlStructurally) {
  HtmlConverter conv;
  auto doc = conv.Convert(
      "<HTML><BODY><H1>Anomaly Description</H1><P>The engine failed."
      "<H1>Disposition</H1><P>Closed.</BODY></HTML>",
      Ctx("a.html"));
  ASSERT_TRUE(doc.ok());
  auto sections = Sections(*doc);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].heading, "Anomaly Description");
  EXPECT_NE(sections[0].text.find("engine failed"), std::string::npos);
}

TEST(XmlConverterTest, StrictThenTolerant) {
  XmlConverter conv;
  auto ok = conv.Convert("<doc><context>T</context></doc>", Ctx("d.xml"));
  ASSERT_TRUE(ok.ok());
  // Near-XML falls back to the tolerant parser instead of erroring.
  auto tolerant = conv.Convert("<doc><context>T</doc>", Ctx("d.xml"));
  ASSERT_TRUE(tolerant.ok());
}

TEST(CsvParserTest, QuotedFieldsAndEmbeddedSeparators) {
  auto rows = ParseCsv("a,b,c\n\"x,y\",\"he said \"\"hi\"\"\",plain\n");
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[1].size(), 3u);
  EXPECT_EQ(rows[1][0], "x,y");
  EXPECT_EQ(rows[1][1], "he said \"hi\"");
  EXPECT_EQ(rows[1][2], "plain");
}

TEST(CsvParserTest, CrLfAndEmptyLines) {
  auto rows = ParseCsv("h1,h2\r\n\r\nv1,v2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "v2");
}

TEST(CsvConverterTest, RowsBecomeNamedCells) {
  CsvConverter conv;
  auto doc = conv.Convert("task,amount\nalpha,100\nbeta,200\n", Ctx("b.csv"));
  ASSERT_TRUE(doc.ok());
  std::string markup = xml::Serialize(*doc);
  EXPECT_NE(markup.find("<cell name=\"task\">alpha</cell>"), std::string::npos);
  EXPECT_NE(markup.find("<cell name=\"amount\">200</cell>"), std::string::npos);
  // The sheet is one section titled by the file.
  auto sections = Sections(*doc);
  ASSERT_EQ(sections.size(), 1u);
  EXPECT_EQ(sections[0].heading, "b.csv");
}

TEST(NrtConverterTest, FontSizeDrivesHeadings) {
  NrtConverter conv;
  auto doc = conv.Convert(
      ".font 24 bold\n"
      "Proposal Title Here\n"
      ".font 11\n"
      "Body paragraph one.\n"
      "\n"
      ".font 16 bold\n"
      "Budget\n"
      ".font 11\n"
      "The requested amount is 250 thousand dollars.\n",
      Ctx("p.doc"));
  ASSERT_TRUE(doc.ok());
  auto sections = Sections(*doc);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].heading, "Proposal Title Here");
  EXPECT_EQ(sections[1].heading, "Budget");
  EXPECT_NE(sections[1].text.find("250 thousand"), std::string::npos);
}

TEST(NrtConverterTest, BoldBodyBecomesIntenseMarkup) {
  NrtConverter conv;
  auto doc = conv.Convert(
      ".font 11\nplain text.\n\n.font 11 bold\nvery important warning.\n",
      Ctx("w.doc"));
  ASSERT_TRUE(doc.ok());
  std::string markup = xml::Serialize(*doc);
  EXPECT_NE(markup.find("<b>very important warning.</b>"), std::string::npos);
}

TEST(NrtConverterTest, MetaDirectivesBecomeSimulationNodes) {
  NrtConverter conv;
  auto doc = conv.Convert(".meta division Science\n.font 11\nbody.\n", Ctx("m.doc"));
  ASSERT_TRUE(doc.ok());
  std::string markup = xml::Serialize(*doc);
  EXPECT_NE(markup.find("division=\"Science\""), std::string::npos);
}

TEST(NrtConverterTest, BadFontDirectiveIsError) {
  NrtConverter conv;
  EXPECT_TRUE(conv.Convert(".font big\nx\n", Ctx("bad.doc")).status().IsParseError());
}

}  // namespace
}  // namespace netmark::convert
