#include "federation/databank_config.h"

#include "common/string_util.h"

namespace netmark::federation {

netmark::Result<DatabankConfig> ParseDatabankConfig(std::string_view text) {
  NETMARK_ASSIGN_OR_RETURN(Config ini, Config::Parse(text));
  DatabankConfig config;
  for (const std::string& section : ini.Sections()) {
    if (netmark::StartsWith(section, "source:")) {
      SourceDecl decl;
      decl.name = netmark::Trim(section.substr(7));
      if (decl.name.empty()) {
        return netmark::Status::ParseError("source section with empty name");
      }
      decl.kind = netmark::ToLower(ini.GetOr(section, "kind", ""));
      if (decl.kind == "local") {
        decl.path = ini.GetOr(section, "path", "");
        if (decl.path.empty()) {
          return netmark::Status::ParseError("local source " + decl.name +
                                             " needs path=");
        }
      } else if (decl.kind == "remote") {
        decl.host = ini.GetOr(section, "host", "127.0.0.1");
        auto port_value = ini.GetInt(section, "port");
        if (!port_value.ok()) {
          return netmark::Status::ParseError("remote source " + decl.name +
                                             " needs a numeric port=");
        }
        int64_t port = *port_value;
        if (port <= 0 || port > 65535) {
          return netmark::Status::ParseError("remote source " + decl.name +
                                             " has bad port");
        }
        decl.port = static_cast<uint16_t>(port);
      } else {
        return netmark::Status::ParseError("source " + decl.name +
                                           " has unknown kind '" + decl.kind + "'");
      }
      std::string caps = netmark::ToLower(ini.GetOr(section, "capabilities", "full"));
      if (caps == "content") {
        decl.capabilities = Capabilities::ContentOnly();
      } else if (caps != "full") {
        return netmark::Status::ParseError("source " + decl.name +
                                           " has unknown capabilities '" + caps + "'");
      }
      // Resilience knobs (all optional; router defaults apply when absent).
      const bool has_timeout = ini.Get(section, "timeout_ms").ok();
      const bool has_retries = ini.Get(section, "max_retries").ok();
      const bool has_breaker_failures = ini.Get(section, "breaker_failures").ok();
      const bool has_breaker_cooldown =
          ini.Get(section, "breaker_cooldown_ms").ok();
      if (has_timeout) {
        auto v = ini.GetInt(section, "timeout_ms");
        if (!v.ok() || *v < 0) {
          return netmark::Status::ParseError("source " + decl.name +
                                             " has bad timeout_ms");
        }
        decl.policy.timeout_ms = *v;
      }
      if (has_retries) {
        auto v = ini.GetInt(section, "max_retries");
        if (!v.ok() || *v < 0) {
          return netmark::Status::ParseError("source " + decl.name +
                                             " has bad max_retries");
        }
        decl.policy.max_retries = static_cast<int>(*v);
      }
      if (has_breaker_failures || has_breaker_cooldown) {
        CircuitBreakerConfig breaker;
        if (has_breaker_failures) {
          auto v = ini.GetInt(section, "breaker_failures");
          if (!v.ok() || *v < 0) {
            return netmark::Status::ParseError("source " + decl.name +
                                               " has bad breaker_failures");
          }
          breaker.failure_threshold = static_cast<int>(*v);
        }
        if (has_breaker_cooldown) {
          auto v = ini.GetInt(section, "breaker_cooldown_ms");
          if (!v.ok() || *v < 0) {
            return netmark::Status::ParseError("source " + decl.name +
                                               " has bad breaker_cooldown_ms");
          }
          breaker.cooldown_ms = *v;
        }
        decl.policy.breaker = breaker;
      }
      config.sources.push_back(std::move(decl));
    } else if (netmark::StartsWith(section, "databank:")) {
      DatabankDecl decl;
      decl.name = netmark::Trim(section.substr(9));
      if (decl.name.empty()) {
        return netmark::Status::ParseError("databank section with empty name");
      }
      NETMARK_ASSIGN_OR_RETURN(std::string sources, ini.Get(section, "sources"));
      decl.sources = netmark::SplitAndTrim(sources, ',');
      if (decl.sources.empty()) {
        return netmark::Status::ParseError("databank " + decl.name +
                                           " declares no sources");
      }
      config.databanks.push_back(std::move(decl));
    } else if (!section.empty()) {
      return netmark::Status::ParseError("unknown config section [" + section + "]");
    }
  }
  // Validate references.
  for (const DatabankDecl& bank : config.databanks) {
    for (const std::string& src : bank.sources) {
      bool found = false;
      for (const SourceDecl& decl : config.sources) {
        if (netmark::EqualsIgnoreCase(decl.name, src)) {
          found = true;
          break;
        }
      }
      if (!found) {
        return netmark::Status::ParseError("databank " + bank.name +
                                           " references undeclared source " + src);
      }
    }
  }
  return config;
}

netmark::Status ApplyDatabankConfig(const DatabankConfig& config,
                                    const SourceFactory& factory, Router* router) {
  for (const SourceDecl& decl : config.sources) {
    NETMARK_ASSIGN_OR_RETURN(std::shared_ptr<Source> source, factory(decl));
    if (source == nullptr) {
      return netmark::Status::Internal("source factory returned null for " +
                                       decl.name);
    }
    NETMARK_RETURN_NOT_OK(router->RegisterSource(std::move(source), decl.policy));
  }
  for (const DatabankDecl& bank : config.databanks) {
    // Resolve to the canonical (lower-cased) names registered above.
    std::vector<std::string> sources;
    for (const std::string& src : bank.sources) {
      sources.push_back(netmark::ToLower(src));
    }
    NETMARK_RETURN_NOT_OK(router->DefineDatabank(bank.name, std::move(sources)));
  }
  return netmark::Status::OK();
}

}  // namespace netmark::federation
