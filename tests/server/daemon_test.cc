#include "server/daemon.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/temp_dir.h"

namespace netmark::server {
namespace {

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("daemon");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->Sub("store").string());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    converters_ = convert::ConverterRegistry::Default();
    options_.drop_dir = dir_->Sub("drop");
    options_.poll_interval = std::chrono::milliseconds(20);
    // Tests drop fully-written files and sweep immediately; disable the
    // still-being-written deferral except where a test opts back in.
    options_.stable_age = std::chrono::milliseconds(0);
    daemon_ = std::make_unique<IngestionDaemon>(store_.get(), &converters_, options_);
    std::filesystem::create_directories(options_.drop_dir);
  }

  void Drop(const std::string& name, const std::string& content) {
    ASSERT_TRUE(netmark::WriteFile(options_.drop_dir / name, content).ok());
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
  convert::ConverterRegistry converters_;
  DaemonOptions options_;
  std::unique_ptr<IngestionDaemon> daemon_;
};

TEST_F(DaemonTest, ProcessOnceIngestsMixedFormats) {
  Drop("a.txt", "OVERVIEW\nshuttle overview text\n");
  Drop("b.md", "# Risk\n\nthermal risk memo\n");
  Drop("c.xml", "<document><context>T</context><content>body</content></document>");
  auto processed = daemon_->ProcessOnce();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 3);
  EXPECT_EQ(store_->document_count(), 3u);
  EXPECT_EQ(daemon_->files_ingested(), 3u);
  // Queryable immediately.
  EXPECT_FALSE(store_->TextLookup("shuttle").empty());
}

TEST_F(DaemonTest, ProcessedFilesAreMovedNotReingested) {
  Drop("once.txt", "HEADING\nwords\n");
  ASSERT_EQ(*daemon_->ProcessOnce(), 1);
  ASSERT_EQ(*daemon_->ProcessOnce(), 0);  // drop dir now empty
  EXPECT_EQ(store_->document_count(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(options_.drop_dir / "processed" / "once.txt"));
}

TEST_F(DaemonTest, FailedFilesQuarantined) {
  std::string binary("\x7f"
                     "ELF\x00\x01\x02",
                     7);
  Drop("garbage.bin", binary);
  Drop("fine.txt", "OK HEADING\ncontent\n");
  auto processed = daemon_->ProcessOnce();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 1);
  EXPECT_EQ(daemon_->files_failed(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(options_.drop_dir / "failed" / "garbage.bin"));
  EXPECT_EQ(store_->document_count(), 1u);
}

TEST_F(DaemonTest, HiddenFilesIgnored) {
  Drop(".hidden.swp", "junk");
  EXPECT_EQ(*daemon_->ProcessOnce(), 0);
}

TEST_F(DaemonTest, BackgroundThreadPicksUpDrops) {
  ASSERT_TRUE(daemon_->Start().ok());
  Drop("bg.txt", "BACKGROUND HEADING\npicked up asynchronously\n");
  // Wait for the poll loop (bounded). Poll the daemon's atomic counter, not
  // the store — the store is single-writer and only safe to read once the
  // daemon thread has stopped.
  for (int i = 0; i < 200 && daemon_->files_ingested() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  daemon_->Stop();
  EXPECT_EQ(store_->document_count(), 1u);
  EXPECT_FALSE(store_->TextLookup("asynchronously").empty());
}

TEST_F(DaemonTest, FreshFileDeferredUntilSizeStable) {
  // Opt back into the half-copied-drop protection with a window so large
  // that only the cross-sweep size-stability rule can admit a file.
  options_.stable_age = std::chrono::hours(1);
  IngestionDaemon daemon(store_.get(), &converters_, options_);
  Drop("slow_copy.txt", "HEADING\npartial");
  EXPECT_EQ(*daemon.ProcessOnce(), 0);  // first sight: defer, don't fail
  EXPECT_EQ(daemon.files_failed(), 0u);
  EXPECT_TRUE(std::filesystem::exists(options_.drop_dir / "slow_copy.txt"));

  // The copy "continues": the signature changed, so it defers again.
  Drop("slow_copy.txt", "HEADING\npartial plus the rest of the file\n");
  EXPECT_EQ(*daemon.ProcessOnce(), 0);

  // Unchanged across two sweeps: ingested into processed/, not failed/.
  EXPECT_EQ(*daemon.ProcessOnce(), 1);
  EXPECT_EQ(daemon.files_failed(), 0u);
  EXPECT_TRUE(std::filesystem::exists(options_.drop_dir / "processed" /
                                      "slow_copy.txt"));
  EXPECT_GE(daemon.counters().deferred, 2u);
}

TEST_F(DaemonTest, QuietOldFilesIngestedOnFirstSweep) {
  options_.stable_age = std::chrono::milliseconds(30);
  IngestionDaemon daemon(store_.get(), &converters_, options_);
  Drop("settled.txt", "HEADING\nwritten a while ago\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(*daemon.ProcessOnce(), 1);  // mtime older than the window
}

TEST_F(DaemonTest, PerStageCountersTrackThePipeline) {
  Drop("one.txt", "HEADING\nfirst\n");
  Drop("two.md", "# Title\n\nsecond\n");
  std::string binary("\x7f"
                     "ELF\x00\x01\x02",
                     7);
  Drop("bad.bin", binary);
  ASSERT_EQ(*daemon_->ProcessOnce(), 2);
  DaemonCounters c = daemon_->counters();
  EXPECT_EQ(c.queued, 3u);
  EXPECT_EQ(c.converted, 2u);
  EXPECT_EQ(c.inserted, 2u);
  EXPECT_EQ(c.failed, 1u);
  EXPECT_EQ(c.deferred, 0u);
  EXPECT_GT(c.convert_ns, 0u);
  EXPECT_GT(c.insert_ns, 0u);
}

TEST_F(DaemonTest, DeleteModeRemovesFiles) {
  options_.keep_processed = false;
  IngestionDaemon daemon(store_.get(), &converters_, options_);
  Drop("gone.txt", "HEADING\nbye\n");
  ASSERT_EQ(*daemon.ProcessOnce(), 1);
  EXPECT_FALSE(std::filesystem::exists(options_.drop_dir / "gone.txt"));
  EXPECT_FALSE(std::filesystem::exists(options_.drop_dir / "processed" / "gone.txt"));
}

}  // namespace
}  // namespace netmark::server
