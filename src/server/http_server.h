// HTTP/1.1 server over POSIX sockets with two connection models behind one
// class:
//
// * `reactor=epoll` (default) — a single reactor thread owns every socket
//   through an epoll set (level-triggered, EPOLLONESHOT re-arm): it accepts,
//   reads, and incrementally frames requests as bytes arrive, handing only
//   *fully parsed* requests to the bounded worker queue. Idle keep-alive
//   connections cost one epoll registration and a buffer, not a parked
//   worker, so tens of thousands of quiet clients coexist with a small pool.
//   See src/server/epoll_reactor.h for the state machine.
// * `reactor=threadpool` (legacy, selectable for one release) — the PR 5
//   model: an accept thread pushes whole connections into a bounded queue
//   and each pool worker serves one connection start-to-close.
//
// Both models share the framing code (CompleteMessageBytes), the worker
// pool, and every externally observable behavior: 503 shedding with
// Retry-After when the queue is full, 408 on mid-request stalls, quiet idle
// reaps, `max_requests_per_connection` rotation, pipelined-buffer carryover,
// and graceful drain (Stop() finishes queued/in-flight requests with
// Connection: close under a clamped grace window).
//
// The tier stays lean — NETMARK's thesis — but the front door multiplexes
// client fan-in the way the mediation architecture assumes, which the
// snapshot-isolated read path (XmlStore::BeginRead) makes safe end-to-end.

#ifndef NETMARK_SERVER_HTTP_SERVER_H_
#define NETMARK_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/work_queue.h"
#include "observability/metrics.h"
#include "server/http_message.h"

namespace netmark::server {

class EpollReactor;

/// Request handler: pure function of the request. Must be thread-safe — the
/// pool invokes it from `worker_threads` threads concurrently.
using Handler = std::function<HttpResponse(const HttpRequest&)>;

/// Connection model (the `[server] reactor=` INI knob).
enum class ReactorModel {
  /// Readiness-driven: one reactor thread multiplexes all sockets, workers
  /// only ever run fully framed requests.
  kEpoll,
  /// Legacy worker-per-connection model (PR 5); kept selectable for one
  /// release as a rollback path, then slated for removal.
  kThreadPool,
};

/// Parses "epoll" / "threadpool" (the `[server] reactor=` values).
netmark::Result<ReactorModel> ParseReactorModel(std::string_view text);
std::string_view ReactorModelName(ReactorModel model);

/// Largest accepted request message (head + body).
inline constexpr size_t kMaxHttpMessageBytes = 64 * 1024 * 1024;
/// Once draining, any in-progress read gets at most this much longer.
inline constexpr int64_t kDrainGraceMicros = 200 * 1000;

/// Serving knobs. The defaults suit loopback tests; a production front end
/// would raise the pool and queue sizes.
struct HttpServerOptions {
  /// Connection model; kThreadPool restores the PR 5 worker-per-connection
  /// behavior (one release of rollback headroom).
  ReactorModel reactor = ReactorModel::kEpoll;
  /// Pool workers executing requests (>= 1).
  int worker_threads = 4;
  /// Bounded handoff queue feeding the pool before 503 shedding kicks in.
  /// Under `epoll` it holds fully framed requests; under `threadpool` it
  /// holds accepted connections.
  size_t accept_queue_capacity = 64;
  /// Keep-alive requests served per connection before the server closes it
  /// (bounds per-client resource capture; 0 = one request, Connection:
  /// close semantics).
  int max_requests_per_connection = 100;
  /// How long a keep-alive connection may sit idle between requests (ms)
  /// before the server reaps it quietly.
  int idle_timeout_ms = 5000;
  /// Budget for reading one request once its first byte arrived (ms); on
  /// expiry the connection is closed and netmark_http_read_timeouts_total
  /// bumps — a stalled client costs one epoll registration (or one worker,
  /// under threadpool) at most this long. Also bounds response writes.
  int read_timeout_ms = 5000;
};

/// \brief Loopback HTTP server: epoll reactor or legacy worker pool.
class HttpServer {
 public:
  explicit HttpServer(Handler handler, HttpServerOptions options = {});
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the reactor (or
  /// accept) thread plus the worker pool.
  netmark::Status Start(uint16_t port = 0);
  /// Graceful drain: stops accepting, serves already-queued requests, lets
  /// in-flight requests finish (half-read requests get a clamped grace
  /// window), then joins all threads. Idempotent.
  void Stop();

  /// Re-homes the server's metrics (netmark_http_* pool/queue/shed/timeout
  /// series) onto `registry`. Call before Start.
  void BindMetrics(observability::MetricsRegistry* registry);

  /// Bound port (valid after Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }

  const HttpServerOptions& options() const { return options_; }

  // --- Counters (tests/benchmarks; mirrored as metrics) ---
  uint64_t requests_served() const { return requests_served_.load(); }
  uint64_t connections_accepted() const { return connections_accepted_.load(); }
  uint64_t connections_shed() const { return connections_shed_.load(); }
  uint64_t accept_errors() const { return accept_errors_.load(); }
  uint64_t read_timeouts() const { return read_timeouts_.load(); }
  uint64_t keepalive_reuses() const { return keepalive_reuses_.load(); }
  /// Connections with a request currently queued or executing (threadpool:
  /// connections held by a worker).
  int64_t active_connections() const { return active_connections_.load(); }
  /// Sockets the server currently holds open (epoll: every registered
  /// connection, idle ones included; threadpool: queued + served).
  int64_t open_connections() const { return open_connections_.load(); }
  /// epoll_wait returns on the reactor thread (0 under threadpool).
  uint64_t epoll_wakeups() const { return epoll_wakeups_.load(); }

 private:
  friend class EpollReactor;

  /// One accepted connection queued for a worker (threadpool model); the
  /// accept timestamp feeds the queue_wait trace span.
  struct QueuedConn {
    int fd = -1;
    int64_t accepted_micros = 0;
  };

  /// One fully framed request queued for a worker (epoll model). The
  /// reactor owns the connection; the worker only parses, runs the handler,
  /// and writes the response on `fd` before posting a Completion back.
  struct FramedRequest {
    int fd = -1;
    uint64_t conn_id = 0;       ///< reactor connection id (fd-reuse guard)
    std::string raw;            ///< exactly one head+body message
    int served_before = 0;      ///< requests already served on this conn
    int64_t enqueued_micros = 0;  ///< feeds the queue_wait trace span
  };

  /// Worker verdict posted back to the reactor after the response write.
  struct Completion {
    int fd = -1;
    uint64_t conn_id = 0;
    bool keep = false;  ///< re-arm for the next request vs close
  };

  // Threadpool (legacy) model.
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one connection's keep-alive request loop, then closes it.
  void ServeConnection(int fd, int64_t queue_wait_micros);

  // Epoll reactor model.
  void ReactorWorkerLoop();
  /// Parses + executes one framed request and writes the response; returns
  /// whether the connection should be kept for the next request.
  bool ServeFramedRequest(const FramedRequest& request);

  void BindHandles();

  Handler handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  /// Set at the start of Stop(): responses switch to Connection: close and
  /// idle waits cut short so the drain completes promptly.
  std::atomic<bool> draining_{false};

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> accept_errors_{0};
  std::atomic<uint64_t> read_timeouts_{0};
  std::atomic<uint64_t> keepalive_reuses_{0};
  std::atomic<int64_t> active_connections_{0};
  std::atomic<int64_t> open_connections_{0};
  std::atomic<uint64_t> epoll_wakeups_{0};
  /// Mirrors the handoff queue depth without touching the queue from gauge
  /// callbacks (the queue object is recreated per Start).
  std::atomic<int64_t> queue_depth_{0};

  std::unique_ptr<WorkQueue<QueuedConn>> queue_;          // threadpool model
  std::unique_ptr<WorkQueue<FramedRequest>> request_queue_;  // epoll model
  std::unique_ptr<EpollReactor> reactor_;
  std::thread accept_thread_;  ///< accept loop or reactor loop, per model
  std::vector<std::thread> workers_;

  /// Private fallback registry (BindMetrics re-homes onto the facade's).
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_ = nullptr;
  struct MetricHandles {
    observability::Counter* requests = nullptr;
    observability::Counter* shed = nullptr;
    observability::Counter* accept_errors = nullptr;
    observability::Counter* read_timeouts = nullptr;
    observability::Counter* keepalive_reuses = nullptr;
    observability::Counter* epoll_wakeups = nullptr;
  } handles_;
};

}  // namespace netmark::server

#endif  // NETMARK_SERVER_HTTP_SERVER_H_
