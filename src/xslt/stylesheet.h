// XSLT-lite stylesheets.
//
// Supported instruction set (the slice of XSLT 1.0 NETMARK result
// composition uses; the paper runs Xalan):
//
//   xsl:template match="pattern"
//   xsl:apply-templates [select="path"]
//   xsl:value-of select="path"
//   xsl:for-each select="path"  (with optional nested xsl:sort)
//   xsl:sort select="path" [order="ascending|descending"]
//            [data-type="text|number"]
//   xsl:if test="expr"
//   xsl:choose / xsl:when test="expr" / xsl:otherwise
//   xsl:text
//   xsl:element name="avt" / xsl:attribute name="name"
//   xsl:copy-of select="path"
//
// Literal result elements are copied through; their attribute values may
// contain `{path}` value templates. Match patterns support "/", "*",
// "text()", "name" and parent-qualified chains "a/b/c".

#ifndef NETMARK_XSLT_STYLESHEET_H_
#define NETMARK_XSLT_STYLESHEET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace netmark::xslt {

/// \brief A compiled stylesheet: the parsed DOM plus its template table.
class Stylesheet {
 public:
  /// Parses stylesheet markup.
  static netmark::Result<Stylesheet> Parse(std::string_view text);

  /// One template rule.
  struct Template {
    std::vector<std::string> match_chain;  ///< pattern steps, outermost first
    bool matches_root = false;
    double priority = 0;
    xml::NodeId body = xml::kInvalidNode;  ///< the xsl:template element
    int order = 0;                         ///< declaration order (ties)
  };

  /// Best-matching template for a source node, or nullptr (built-in rules).
  const Template* FindTemplate(const xml::Document& source, xml::NodeId node) const;

  const xml::Document& doc() const { return *doc_; }

 private:
  /// True when `node` matches the template's pattern.
  static bool Matches(const Template& t, const xml::Document& source,
                      xml::NodeId node);

  std::shared_ptr<xml::Document> doc_;  // shared so Stylesheet is copyable
  std::vector<Template> templates_;
};

/// \brief Applies a stylesheet to a source document.
netmark::Result<xml::Document> Transform(const Stylesheet& stylesheet,
                                         const xml::Document& source);

/// \brief One-call convenience: parse + transform.
netmark::Result<xml::Document> Transform(std::string_view stylesheet_text,
                                         const xml::Document& source);

}  // namespace netmark::xslt

#endif  // NETMARK_XSLT_STYLESHEET_H_
