#include "federation/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"

namespace netmark::federation {

FaultInjectingTransport::Fault FaultInjectingTransport::Roll() {
  if (remaining_forced_failures_ < 0) {
    remaining_forced_failures_ = spec_.fail_first_n;
  }
  if (remaining_forced_failures_ > 0) {
    --remaining_forced_failures_;
    return Fault::kError;
  }
  // One roll decides the fault; rate bands are evaluated in declaration
  // order so the decision sequence is reproducible from the seed alone.
  double roll = rng_.UniformDouble();
  double band = spec_.error_rate;
  if (roll < band) return Fault::kError;
  band += spec_.http_500_rate;
  if (roll < band) return Fault::kHttp500;
  band += spec_.truncate_rate;
  if (roll < band) return Fault::kTruncate;
  band += spec_.malformed_rate;
  if (roll < band) return Fault::kMalformed;
  band += spec_.hang_rate;
  if (roll < band) return Fault::kHang;
  return Fault::kNone;
}

netmark::Result<std::string> FaultInjectingTransport::Get(
    const std::string& path_and_query, const CallContext& ctx) {
  Fault fault;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++calls_;
    fault = Roll();
  }
  switch (fault) {
    case Fault::kError:
      return netmark::Status::Unavailable("injected fault: connection refused");
    case Fault::kHttp500:
      return netmark::Status::Unavailable("injected fault: remote returned HTTP 500");
    case Fault::kTruncate:
      return netmark::Status::IOError("injected fault: truncated body");
    case Fault::kMalformed:
      // Cut mid-tag: arrives "successfully" but is unparseable.
      return std::string("<results><result docid=\"1\"");
    case Fault::kHang: {
      // Sleep the caller's remaining budget away (plus a hair, so the caller
      // observes expiry), or a fixed hang when unbounded.
      int64_t sleep_ms = ctx.bounded()
                             ? std::max<int64_t>(ctx.remaining_ms() + 5, 0)
                             : spec_.hang_ms;
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      return netmark::Status::DeadlineExceeded("injected fault: hang (" +
                                               std::to_string(sleep_ms) + "ms)");
    }
    case Fault::kNone:
      break;
  }
  if (spec_.latency_ms > 0) {
    if (ctx.bounded() && ctx.remaining_ms() < spec_.latency_ms) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max<int64_t>(ctx.remaining_ms(), 0) + 5));
      return netmark::Status::DeadlineExceeded(
          "injected latency outlived the deadline");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.latency_ms));
  }
  return inner_->Get(path_and_query, ctx);
}

}  // namespace netmark::federation
