// Table: schema-checked rows over a heap file, with secondary B+Tree indexes.
//
// MVCC (docs/mvcc.md): the B+Trees are in-memory and writer-latest — entries
// appear at Insert time, before the commit publishes. Under MVCC the table
// therefore (a) *defers* index-entry removal: Delete/key-changed-Update queue
// the removal, the commit seals it with its epoch, and the GC applies it only
// once no pinned reader is older (so snapshot readers keep finding old rows
// through the index); and (b) *verifies* every index lookup against the heap
// at the reader's epoch — a candidate whose row is gone, not yet visible, or
// no longer matches the key at that epoch is silently dropped. Readers take
// index_mu_ shared per lookup; only mutators and the GC take it exclusive
// (both are short, bounded operations).

#ifndef NETMARK_STORAGE_TABLE_H_
#define NETMARK_STORAGE_TABLE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/pager.h"
#include "storage/schema.h"

namespace netmark::storage {

/// Definition of a secondary index.
struct IndexDef {
  std::string name;
  std::vector<std::string> columns;
};

/// \brief One relational table: typed rows addressed by RowId.
class Table {
 public:
  /// Opens (or creates) the table's heap file at `file_path`. Indexes in
  /// `indexes` are (re)built from a full scan. `pager_options` carries the
  /// I/O environment, the checksum-verification knob, and the MVCC mode.
  static netmark::Result<std::unique_ptr<Table>> Open(
      TableSchema schema, const std::string& file_path,
      const std::vector<IndexDef>& indexes = {}, PagerOptions pager_options = {});

  const TableSchema& schema() const { return schema_; }
  uint64_t row_count() const { return heap_->live_records(); }

  /// Validates against the schema and stores the row.
  netmark::Result<RowId> Insert(const Row& row);
  netmark::Result<Row> Get(RowId id, Epoch epoch = kLatestEpoch) const;
  netmark::Status Update(RowId id, const Row& row);
  netmark::Status Delete(RowId id);

  /// Visits every row live as of `epoch`. Stops on non-OK from `fn`.
  netmark::Status Scan(
      const std::function<netmark::Status(RowId, const Row&)>& fn,
      Epoch epoch = kLatestEpoch) const;

  /// Adds an index over `columns` and builds it from current rows.
  netmark::Status CreateIndex(const std::string& name,
                              const std::vector<std::string>& columns);
  bool HasIndex(const std::string& name) const { return indexes_.count(name) != 0; }
  std::vector<IndexDef> IndexDefs() const;

  /// Exact-match lookup on an index. Under MVCC every candidate is verified
  /// against the heap at `epoch` (see the file comment).
  netmark::Result<std::vector<RowId>> IndexLookup(const std::string& index,
                                                  const IndexKey& key,
                                                  Epoch epoch = kLatestEpoch) const;
  /// Inclusive range lookup on an index.
  netmark::Result<std::vector<RowId>> IndexRange(const std::string& index,
                                                 const IndexKey& lo,
                                                 const IndexKey& hi,
                                                 Epoch epoch = kLatestEpoch) const;
  /// Prefix lookup (first k components equal) on an index.
  netmark::Result<std::vector<RowId>> IndexPrefix(const std::string& index,
                                                  const IndexKey& prefix,
                                                  Epoch epoch = kLatestEpoch) const;

  /// MVCC commit hook: stamps every queued index removal with the commit's
  /// epoch, making it eligible for ApplyPendingRemovals once no reader pins
  /// an older epoch. Called with the same epoch the pager publishes under.
  void SealPendingRemovals(Epoch epoch);

  /// MVCC GC hook: applies sealed removals whose epoch <= `watermark` (the
  /// oldest pinned epoch, or the current epoch when nothing is pinned).
  /// Returns the number applied.
  uint64_t ApplyPendingRemovals(Epoch watermark);

  /// Queued index removals not yet applied (tests/metrics).
  uint64_t pending_removals() const;

  /// Direct access to the underlying B+Tree (tests/benchmarks). Not
  /// synchronized against concurrent mutation.
  const BTree* GetIndex(const std::string& name) const;

  netmark::Status Flush() { return pager_->Flush(); }
  const Pager& pager() const { return *pager_; }
  /// Mutable pager access (the database's commit/checkpoint paths capture
  /// dirty pages for the write-ahead log and fsync the heap file).
  Pager* mutable_pager() { return pager_.get(); }

 private:
  struct Index {
    std::vector<size_t> column_indexes;
    BTree tree;
  };

  /// One deferred index-entry removal (MVCC). Unsealed until the commit
  /// that made the removal visible publishes.
  struct PendingRemoval {
    std::string index;
    IndexKey key;
    RowId id;
    Epoch sealed_epoch = 0;
    bool sealed = false;
  };

  Table(TableSchema schema, std::unique_ptr<Pager> pager,
        std::unique_ptr<HeapFile> heap)
      : schema_(std::move(schema)), pager_(std::move(pager)), heap_(std::move(heap)) {}

  IndexKey ExtractKey(const Index& index, const Row& row) const;
  netmark::Status IndexInsert(const Row& row, RowId id);
  netmark::Status IndexRemove(const Row& row, RowId id);
  /// Queues removal of (key, id) from `name` (MVCC deferred-removal path).
  void DeferRemoval(const std::string& name, IndexKey key, RowId id);
  /// Re-reads each candidate at `epoch` and keeps those whose extracted key
  /// satisfies `matches`. NotFound candidates are dropped; other errors
  /// propagate.
  netmark::Result<std::vector<RowId>> VerifyCandidates(
      const Index& index, std::vector<RowId> candidates, Epoch epoch,
      const std::function<bool(const IndexKey&)>& matches) const;

  TableSchema schema_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<HeapFile> heap_;
  /// Guards the B+Tree contents and pending_removals_ (the indexes_ map
  /// structure itself only changes in CreateIndex, at open time).
  mutable std::shared_mutex index_mu_;
  std::map<std::string, Index> indexes_;
  std::vector<PendingRemoval> pending_removals_;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_TABLE_H_
