// JSON upmark converter.
//
// Enterprise sources increasingly export JSON; NETMARK's schema-less store
// takes it like any other document. Mapping:
//
//   {"title": "T", "items": [1, 2]}        <document>
//                                            <netmark:meta .../>
//                                            <context>T</context>
//                                            <items><item>1</item>
//                                                   <item>2</item></items>
//                                          </document>
//
// Object keys become elements (tag-sanitized, original spelling kept in a
// name= attribute when it differs); arrays repeat <item> children; scalars
// become text. String fields keyed `title`/`name`/`heading`/`subject`
// are promoted to CONTEXT elements so context search works on JSON too.

#ifndef NETMARK_CONVERT_JSON_CONVERTER_H_
#define NETMARK_CONVERT_JSON_CONVERTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "convert/converter.h"

namespace netmark::convert {

/// \brief Parsed JSON value (exposed for tests and other consumers).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered object fields.
  std::vector<std::pair<std::string, JsonValue>> object;
};

/// \brief Parses a JSON document (RFC 8259 subset: no duplicate-key policy,
/// \uXXXX escapes decoded to UTF-8, surrogate pairs supported).
netmark::Result<JsonValue> ParseJson(std::string_view text);

/// \brief Converts `.json` documents.
class JsonConverter : public Converter {
 public:
  std::string_view format() const override { return "json"; }
  std::vector<std::string_view> extensions() const override { return {"json"}; }
  bool Sniff(std::string_view content) const override;
  netmark::Result<xml::Document> Convert(std::string_view content,
                                         const ConvertContext& ctx) const override;
};

}  // namespace netmark::convert

#endif  // NETMARK_CONVERT_JSON_CONVERTER_H_
