// Character entity decoding/encoding for the SGML parser and serializer.

#ifndef NETMARK_XML_ENTITIES_H_
#define NETMARK_XML_ENTITIES_H_

#include <string>
#include <string_view>

namespace netmark::xml {

/// \brief Decodes character references (&amp;, &#65;, &#x41;, common HTML
/// named entities). Unknown entities are passed through verbatim — the
/// parser is tolerant by design.
std::string DecodeEntities(std::string_view s);

/// \brief Escapes text content for serialization (& < >).
std::string EscapeText(std::string_view s);

/// \brief Escapes an attribute value for serialization (& < > ").
std::string EscapeAttribute(std::string_view s);

}  // namespace netmark::xml

#endif  // NETMARK_XML_ENTITIES_H_
