#include "observability/trace.h"

namespace netmark::observability {

int Trace::StartSpan(std::string name, int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  SpanData span;
  span.id = static_cast<int>(spans_.size());
  span.parent = parent >= 0 && parent < span.id ? parent : -1;
  span.name = std::move(name);
  span.start_micros = netmark::MonotonicMicros();
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void Trace::EndSpan(int id, bool ok, std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  SpanData& span = spans_[static_cast<size_t>(id)];
  if (span.end_micros != 0) return;  // already ended
  span.end_micros = netmark::MonotonicMicros();
  span.ok = ok;
  span.note = std::move(note);
}

void Trace::Annotate(int id, std::string key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[static_cast<size_t>(id)].annotations.emplace_back(std::move(key),
                                                           std::move(value));
}

std::vector<SpanData> Trace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

int64_t Trace::RootDurationMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.empty()) return 0;
  const SpanData& root = spans_.front();
  if (root.end_micros != 0) return root.end_micros - root.start_micros;
  return netmark::MonotonicMicros() - root.start_micros;
}

}  // namespace netmark::observability
