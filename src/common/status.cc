#include "common/status.h"

namespace netmark {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kCapacityExceeded:
      return "Capacity exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kSnapshotTooOld:
      return "Snapshot too old";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

}  // namespace netmark
