// Typed values and column types for the relational layer.

#ifndef NETMARK_STORAGE_VALUE_H_
#define NETMARK_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace netmark::storage {

/// Column / value types supported by the storage engine.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

std::string_view ValueTypeToString(ValueType t);
netmark::Result<ValueType> ValueTypeFromString(std::string_view s);

/// \brief A dynamically typed cell value.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    switch (repr_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }
  bool is_null() const { return repr_.index() == 0; }

  /// Typed accessors; must match the held type.
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsReal() const { return std::get<double>(repr_); }
  const std::string& AsStr() const { return std::get<std::string>(repr_); }

  /// Total ordering used by indexes: NULL < ints/doubles (numeric order,
  /// cross-type comparable) < strings (byte order).
  int Compare(const Value& other) const;
  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Debug rendering.
  std::string ToString() const;

 private:
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_VALUE_H_
