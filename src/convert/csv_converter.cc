#include "convert/csv_converter.h"

#include "common/string_util.h"

namespace netmark::convert {

std::vector<std::vector<std::string>> ParseCsv(std::string_view content, char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    // Skip fully empty rows.
    bool all_empty = true;
    for (const std::string& f : row) {
      if (!f.empty()) {
        all_empty = false;
        break;
      }
    }
    if (!all_empty) rows.push_back(std::move(row));
    row.clear();
  };
  size_t i = 0;
  while (i < content.size()) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == sep) {
      end_field();
    } else if (c == '\n') {
      if (!field.empty() || !row.empty()) end_row();
    } else if (c != '\r') {
      field += c;
      field_started = true;
    }
    ++i;
  }
  if (!field.empty() || !row.empty()) end_row();
  return rows;
}

std::string EmitCsv(const std::vector<std::vector<std::string>>& rows, char sep) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += sep;
      const std::string& field = row[c];
      bool needs_quoting = field.find(sep) != std::string::npos ||
                           field.find('"') != std::string::npos ||
                           field.find('\n') != std::string::npos ||
                           field.find('\r') != std::string::npos;
      if (needs_quoting) {
        out += '"';
        for (char ch : field) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        out += field;
      }
    }
    out += '\n';
  }
  return out;
}

bool CsvConverter::Sniff(std::string_view content) const {
  // Consistent comma counts across the first handful of non-empty lines.
  int lines = 0;
  int commas_first = -1;
  for (const std::string& raw : netmark::Split(content.substr(0, 2000), '\n')) {
    std::string_view line = netmark::TrimView(raw);
    if (line.empty()) continue;
    if (line[0] == '<') return false;
    int commas = 0;
    for (char c : line) {
      if (c == ',') ++commas;
    }
    if (commas == 0) return false;
    if (commas_first < 0) {
      commas_first = commas;
    } else if (commas != commas_first) {
      return false;
    }
    if (++lines >= 4) break;
  }
  return lines >= 2;
}

netmark::Result<xml::Document> CsvConverter::Convert(std::string_view content,
                                                     const ConvertContext& ctx) const {
  char sep = netmark::EndsWith(netmark::ToLower(ctx.file_name), ".tsv") ? '\t' : ',';
  std::vector<std::vector<std::string>> rows = ParseCsv(content, sep);
  UpmarkBuilder builder(ctx.file_name, format());
  builder.BeginSection(ctx.file_name.empty() ? "Sheet" : ctx.file_name);
  xml::Document* doc = builder.doc();
  xml::NodeId table = doc->CreateElement("table");
  builder.AddBlock(table);
  if (rows.empty()) return builder.Finish();

  const std::vector<std::string>& header = rows[0];
  for (size_t r = 1; r < rows.size(); ++r) {
    xml::NodeId tr = doc->CreateElement("row");
    doc->AddAttribute(tr, "n", std::to_string(r));
    for (size_t c = 0; c < rows[r].size(); ++c) {
      xml::NodeId cell = doc->CreateElement("cell");
      std::string name = c < header.size() ? header[c] : "col" + std::to_string(c);
      doc->AddAttribute(cell, "name", name);
      if (!rows[r][c].empty()) {
        doc->AppendChild(cell, doc->CreateText(rows[r][c]));
      }
      doc->AppendChild(tr, cell);
    }
    doc->AppendChild(table, tr);
  }
  return builder.Finish();
}

}  // namespace netmark::convert
