// XDB query execution over an XmlStore (paper §2.1.4).
//
// Pipeline: plan lookup/compile -> (result-cache consult) -> text-index
// probe -> RowId context walks -> heading filter -> section assembly.
// Content-only queries return whole documents; context queries (with or
// without content) return sections.
//
// Two read-path accelerators hook in here (both optional, both shared
// across executors over the same store):
//   - QueryResultCache: memoizes whole hit lists keyed by canonical query
//     string + commit epoch (docs/query_cache.md).
//   - QueryPlanCache: memoizes parsed/compiled plans keyed by query shape,
//     including the specialized postings-intersection plan for the dominant
//     context+content shape.

#ifndef NETMARK_QUERY_EXECUTOR_H_
#define NETMARK_QUERY_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "observability/metrics.h"
#include "query/query_hit.h"
#include "query/xdb_query.h"
#include "xmlstore/context_walk.h"
#include "xmlstore/xml_store.h"

namespace netmark::query {

struct QueryPlan;
class QueryPlanCache;
class QueryResultCache;

/// Execution knobs.
struct ExecuteOptions {
  /// Use the inverted index (default). When false, falls back to full scans
  /// — the ablation path for bench_fig6.
  bool use_text_index = true;
  /// Resolve context walks through logical-id index joins instead of RowId
  /// links — the ablation path for bench_ablation_rowid.
  bool use_index_joins_for_walks = false;
  /// Run context+content term queries through the specialized
  /// postings-intersection plan (default). When false they execute through
  /// the generic seed + verify path — the equivalence/ablation knob for
  /// tests and bench_query_cache.
  bool use_specialized_section_plan = true;
};

/// \brief Evaluates XDB queries against one store.
///
/// Execute is const and carries no per-call state, so one executor instance
/// serves many threads concurrently (the worker-pool serving path). Each
/// call runs under a store ReadSnapshot — taken internally, or passed in by
/// a caller that needs the same consistent view across execute + compose.
class QueryExecutor {
 public:
  explicit QueryExecutor(const xmlstore::XmlStore* store,
                         ExecuteOptions options = {})
      : store_(store), options_(options) {}

  /// Per-call statistics, returned through the optional `stats` out-param
  /// (never stored on the executor — Execute stays thread-safe).
  struct Stats {
    size_t index_probes = 0;
    size_t nodes_walked = 0;
    size_t sections_built = 0;
    /// 1 when this call was answered from the result cache (all other
    /// counters then stay 0 — no execution happened).
    size_t cache_hits = 0;
    /// 1 when the plan came from the plan cache instead of being compiled.
    size_t plan_cache_hits = 0;
    /// Reads that hit a quarantined (checksum-failed) page and were skipped
    /// instead of failing the query; >0 means the answer may be partial.
    size_t quarantined_skips = 0;
  };

  /// Opts into cumulative instrumentation: every Execute then also bumps
  /// netmark_xdb_* counters and observes netmark_xdb_execute_micros on
  /// `registry` (null = back to uninstrumented). Call before concurrent
  /// traffic; the handles are read-only afterwards.
  void BindMetrics(observability::MetricsRegistry* registry);

  /// Consults/fills `cache` around execution (null = no result caching).
  /// The cache MUST be dedicated to this executor's store: keys carry the
  /// store's commit epoch, and epochs of different stores alias. Call
  /// before concurrent traffic.
  void set_result_cache(QueryResultCache* cache) { result_cache_ = cache; }

  /// Reuses compiled plans from `cache` (null = compile per call). Plans
  /// are store-independent, so any executors may share one. Call before
  /// concurrent traffic.
  void set_plan_cache(QueryPlanCache* cache) { plan_cache_ = cache; }

  /// Runs the query under a self-acquired ReadSnapshot; hits are ordered by
  /// (doc_id, position). Do not call while already holding a snapshot on
  /// this thread — use the snapshot overload instead.
  netmark::Result<std::vector<QueryHit>> Execute(const XdbQuery& query,
                                                 Stats* stats = nullptr) const;

  /// Runs the query under a snapshot the caller already holds (so the same
  /// consistent view spans execute + result composition).
  netmark::Result<std::vector<QueryHit>> Execute(
      const XdbQuery& query, const xmlstore::XmlStore::ReadSnapshot& snapshot,
      Stats* stats = nullptr) const;

 private:
  netmark::Result<std::vector<QueryHit>> ExecuteUnderSnapshot(
      const XdbQuery& query, uint64_t epoch, Stats* stats) const;
  /// Plan lookup/compile (the parse half of the split Execute).
  netmark::Result<std::shared_ptr<const QueryPlan>> GetPlan(
      const XdbQuery& query, Stats& stats) const;
  /// Strategy dispatch (the run half).
  netmark::Result<std::vector<QueryHit>> RunPlan(const QueryPlan& plan,
                                                 const XdbQuery& query,
                                                 Stats& stats) const;
  netmark::Result<std::vector<storage::RowId>> ClauseNodes(
      const textindex::QueryClause& clause, Stats& stats) const;
  /// True when `node` sits under INTENSE markup (emphasis-boosted scoring).
  netmark::Result<bool> InsideIntense(storage::RowId node) const;
  netmark::Result<std::vector<QueryHit>> ContentOnly(
      const textindex::TextQuery& content, int64_t doc_scope,
      Stats& stats) const;
  netmark::Result<std::vector<QueryHit>> SectionQuery(const QueryPlan& plan,
                                                      const XdbQuery& query,
                                                      Stats& stats) const;
  /// The compiled context+content fast path: one postings-intersection +
  /// RowId-walk loop at section granularity, heading-only verification.
  netmark::Result<std::vector<QueryHit>> SectionQuerySpecialized(
      const QueryPlan& plan, const XdbQuery& query, Stats& stats) const;
  netmark::Result<std::vector<QueryHit>> XPathQuery(const QueryPlan& plan,
                                                    const XdbQuery& query,
                                                    Stats& stats) const;
  netmark::Result<storage::RowId> Walk(storage::RowId start, Stats& stats) const;

  /// Registry handles (all null when unbound): cumulative mirrors of Stats
  /// plus the execute latency histogram.
  struct MetricHandles {
    observability::Counter* executes = nullptr;
    observability::Counter* index_probes = nullptr;
    observability::Counter* nodes_walked = nullptr;
    observability::Counter* sections_built = nullptr;
    observability::Histogram* execute_micros = nullptr;
  };

  const xmlstore::XmlStore* store_;
  ExecuteOptions options_;
  MetricHandles handles_;
  QueryResultCache* result_cache_ = nullptr;
  QueryPlanCache* plan_cache_ = nullptr;
};

}  // namespace netmark::query

#endif  // NETMARK_QUERY_EXECUTOR_H_
