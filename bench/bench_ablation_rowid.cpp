// Ablation A — "we have exploited the feature of physical row-ids in Oracle
// for very fast traversal between nodes that are related" (paper §2.1.1).
//
// Compares the governing-context walk implemented with physical RowId links
// (one O(1) record fetch per hop) against the identical traversal resolved
// through logical-id index joins (what a store without physical links must
// do: a B+Tree probe plus sibling materialization per hop).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "query/executor.h"
#include "xmlstore/context_walk.h"

namespace {

using namespace netmark;

// All TEXT-node RowIds of the store (walk starting points).
std::vector<storage::RowId> TextNodes(const xmlstore::XmlStore& store) {
  std::vector<storage::RowId> out;
  for (textindex::DocKey key :
       store.text_index().MatchPrefix("")) {  // every indexed node
    out.push_back(storage::RowId::Unpack(key));
  }
  return out;
}

void BM_WalkViaRowId(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(static_cast<size_t>(state.range(0)));
  auto starts = TextNodes(*inst.nm->store());
  size_t i = 0;
  for (auto _ : state) {
    auto ctx = xmlstore::FindGoverningContext(*inst.nm->store(),
                                              starts[i % starts.size()]);
    bench::Check(ctx.status(), "walk");
    benchmark::DoNotOptimize(ctx->page);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(inst.nm->store()->node_count());
}
BENCHMARK(BM_WalkViaRowId)->Arg(120)->Arg(480)->Unit(benchmark::kNanosecond);

void BM_WalkViaIndexJoin(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(static_cast<size_t>(state.range(0)));
  auto starts = TextNodes(*inst.nm->store());
  size_t i = 0;
  for (auto _ : state) {
    auto ctx = xmlstore::FindGoverningContextViaIndex(*inst.nm->store(),
                                                      starts[i % starts.size()]);
    bench::Check(ctx.status(), "walk");
    benchmark::DoNotOptimize(ctx->page);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(inst.nm->store()->node_count());
}
BENCHMARK(BM_WalkViaIndexJoin)->Arg(120)->Arg(480)->Unit(benchmark::kNanosecond);

// Whole-query impact: the same context queries with the executor flipped
// between walk implementations.
void BM_QueryRowIdWalks(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(480);
  query::QueryExecutor executor(inst.nm->store());
  auto q = bench::Unwrap(query::ParseXdbQuery("context=Budget"), "parse");
  for (auto _ : state) {
    auto hits = executor.Execute(q);
    bench::Check(hits.status(), "query");
    benchmark::DoNotOptimize(hits->size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryRowIdWalks)->Unit(benchmark::kMicrosecond);

void BM_QueryIndexJoinWalks(benchmark::State& state) {
  auto inst = bench::MakeLoadedInstance(480);
  query::ExecuteOptions options;
  options.use_index_joins_for_walks = true;
  query::QueryExecutor executor(inst.nm->store(), options);
  auto q = bench::Unwrap(query::ParseXdbQuery("context=Budget"), "parse");
  for (auto _ : state) {
    auto hits = executor.Execute(q);
    bench::Check(hits.status(), "query");
    benchmark::DoNotOptimize(hits->size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryIndexJoinWalks)->Unit(benchmark::kMicrosecond);

void PrintAblationTable() {
  bench::ReportHeader("Ablation A: physical RowId links vs index-join traversal",
                      "physical row-ids give 'very fast traversal between "
                      "nodes that are related'");
  std::printf("%10s %20s %22s %10s\n", "docs", "rowid walk (us)",
              "index-join walk (us)", "speedup");
  for (size_t n : {120, 480}) {
    auto inst = bench::MakeLoadedInstance(n);
    auto starts = TextNodes(*inst.nm->store());
    const int kReps = 2000;
    Stopwatch w1;
    for (int i = 0; i < kReps; ++i) {
      bench::Check(xmlstore::FindGoverningContext(
                       *inst.nm->store(),
                       starts[static_cast<size_t>(i) % starts.size()])
                       .status(),
                   "walk");
    }
    double rowid_us = w1.ElapsedSeconds() * 1e6 / kReps;
    Stopwatch w2;
    for (int i = 0; i < kReps; ++i) {
      bench::Check(xmlstore::FindGoverningContextViaIndex(
                       *inst.nm->store(),
                       starts[static_cast<size_t>(i) % starts.size()])
                       .status(),
                   "walk");
    }
    double join_us = w2.ElapsedSeconds() * 1e6 / kReps;
    std::printf("%10zu %20.2f %22.2f %9.1fx\n", n, rowid_us, join_us,
                join_us / rowid_us);
  }
  std::printf("shape check: rowid hops win by a large constant factor; the gap\n"
              "widens with fan-out because each join hop materializes all\n"
              "siblings while the rowid hop touches exactly one record.\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintAblationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
