#include "convert/json_converter.h"

#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace netmark::convert {

namespace {

// Tag-safe rendering of a JSON key ("fiscal year" -> "fiscal_year").
std::string SanitizeKey(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
        c == '.') {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "f_" + out;
  }
  return out;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : in_(text) {}

  netmark::Result<JsonValue> Run() {
    SkipWhitespace();
    NETMARK_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != in_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  netmark::Status Error(const std::string& message) const {
    return netmark::Status::ParseError(
        netmark::StringPrintf("JSON offset %zu: %s", pos_, message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\n' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  netmark::Result<JsonValue> ParseValue() {
    if (pos_ >= in_.size()) return Error("unexpected end of input");
    switch (in_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        NETMARK_ASSIGN_OR_RETURN(std::string s, ParseString());
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = std::move(s);
        return v;
      }
      case 't':
        if (in_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          JsonValue v;
          v.kind = JsonValue::Kind::kBool;
          v.boolean = true;
          return v;
        }
        return Error("bad literal");
      case 'f':
        if (in_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          JsonValue v;
          v.kind = JsonValue::Kind::kBool;
          v.boolean = false;
          return v;
        }
        return Error("bad literal");
      case 'n':
        if (in_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          return JsonValue{};
        }
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  netmark::Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      if (pos_ >= in_.size() || in_[pos_] != '"') return Error("expected object key");
      NETMARK_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipWhitespace();
      NETMARK_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return v;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  netmark::Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return v;
    while (true) {
      SkipWhitespace();
      NETMARK_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return v;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  netmark::Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= in_.size()) return Error("truncated escape");
        char e = in_[pos_];
        ++pos_;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            NETMARK_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            // Surrogate pair?
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < in_.size() &&
                in_[pos_] == '\\' && in_[pos_ + 1] == 'u') {
              pos_ += 2;
              NETMARK_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low >= 0xDC00 && low <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
              } else {
                return Error("bad low surrogate");
              }
            }
            AppendUtf8(&out, cp);
            break;
          }
          default:
            return Error("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return Error("unterminated string");
  }

  netmark::Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > in_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      char h = in_[pos_ + static_cast<size_t>(k)];
      v <<= 4;
      if (h >= '0' && h <= '9') v |= static_cast<uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f') v |= static_cast<uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') v |= static_cast<uint32_t>(h - 'A' + 10);
      else return Error("bad hex digit in \\u escape");
    }
    pos_ += 4;
    return v;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  netmark::Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() &&
           (std::isdigit(static_cast<unsigned char>(in_[pos_])) || in_[pos_] == '.' ||
            in_[pos_] == 'e' || in_[pos_] == 'E' || in_[pos_] == '+' ||
            in_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    auto number = netmark::ParseDouble(in_.substr(start, pos_ - start));
    if (!number.ok()) return Error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = *number;
    return v;
  }

  std::string_view in_;
  size_t pos_ = 0;
};

// Renders a JSON number without trailing ".000000" noise.
std::string NumberToString(double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<long long>(d));
  }
  std::string s = netmark::StringPrintf("%.17g", d);
  return s;
}

bool IsTitleKey(const std::string& key) {
  std::string k = netmark::ToLower(key);
  return k == "title" || k == "name" || k == "heading" || k == "subject";
}

// Emits `value` as children of `parent`.
void EmitValue(xml::Document* doc, xml::NodeId parent, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      doc->AddAttribute(parent, "null", "true");
      break;
    case JsonValue::Kind::kBool:
      doc->AppendChild(parent, doc->CreateText(value.boolean ? "true" : "false"));
      break;
    case JsonValue::Kind::kNumber:
      doc->AppendChild(parent, doc->CreateText(NumberToString(value.number)));
      break;
    case JsonValue::Kind::kString:
      if (!value.string.empty()) {
        doc->AppendChild(parent, doc->CreateText(value.string));
      }
      break;
    case JsonValue::Kind::kArray:
      for (const JsonValue& element : value.array) {
        xml::NodeId item = doc->CreateElement("item");
        doc->AppendChild(parent, item);
        EmitValue(doc, item, element);
      }
      break;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : value.object) {
        // Title-ish string fields become CONTEXT headings so JSON documents
        // participate in context search.
        if (IsTitleKey(key) && member.kind == JsonValue::Kind::kString) {
          xml::NodeId context = doc->CreateElement("context");
          doc->AppendChild(context, doc->CreateText(member.string));
          doc->AppendChild(parent, context);
          continue;
        }
        std::string tag = SanitizeKey(key);
        xml::NodeId field = doc->CreateElement(tag);
        if (tag != key) doc->AddAttribute(field, "name", key);
        doc->AppendChild(parent, field);
        EmitValue(doc, field, member);
      }
      break;
  }
}

}  // namespace

netmark::Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Run();
}

bool JsonConverter::Sniff(std::string_view content) const {
  std::string_view t = netmark::TrimView(content);
  if (t.empty() || (t[0] != '{' && t[0] != '[')) return false;
  return ParseJson(t).ok();
}

netmark::Result<xml::Document> JsonConverter::Convert(std::string_view content,
                                                      const ConvertContext& ctx) const {
  NETMARK_ASSIGN_OR_RETURN(JsonValue value, ParseJson(content));
  UpmarkBuilder builder(ctx.file_name, format());
  xml::Document* doc = builder.doc();
  xml::NodeId holder = doc->CreateElement("json");
  builder.AddBlock(holder);
  EmitValue(doc, holder, value);
  return builder.Finish();
}

}  // namespace netmark::convert
