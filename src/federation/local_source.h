// LocalStoreSource: full-capability source backed by an in-process XmlStore.

#ifndef NETMARK_FEDERATION_LOCAL_SOURCE_H_
#define NETMARK_FEDERATION_LOCAL_SOURCE_H_

#include <memory>
#include <string>

#include "federation/source.h"
#include "query/executor.h"
#include "query/plan.h"
#include "query/result_cache.h"
#include "xmlstore/xml_store.h"

namespace netmark::federation {

/// \brief Adapter exposing a NETMARK XML Store as a federated source.
class LocalStoreSource : public Source {
 public:
  /// Wraps a store owned elsewhere (must outlive the source).
  LocalStoreSource(std::string name, const xmlstore::XmlStore* store)
      : name_(std::move(name)), store_(store), executor_(store) {}

  /// Opens the store at `dir` and owns it for the source's lifetime (the
  /// form declarative databank configs use).
  static netmark::Result<std::shared_ptr<LocalStoreSource>> OpenOwned(
      std::string name, const std::string& dir);

  const std::string& name() const override { return name_; }
  Capabilities capabilities() const override { return Capabilities::Full(); }

  /// Instruments the inner executor (netmark_xdb_* metrics); call before
  /// traffic.
  void BindMetrics(observability::MetricsRegistry* registry) {
    executor_.BindMetrics(registry);
  }

  /// Shares read-path caches with the inner executor; call before traffic.
  /// `results` MUST belong to the same store this source wraps (its keys
  /// carry that store's commit epochs) — the facade wires its service's
  /// caches into the self-registered source here. `plans` is
  /// store-independent and always safe to share.
  void set_caches(query::QueryResultCache* results,
                  query::QueryPlanCache* plans) {
    executor_.set_result_cache(results);
    executor_.set_plan_cache(plans);
  }

  using Source::Execute;
  netmark::Result<std::vector<FederatedHit>> Execute(
      const query::XdbQuery& query, const CallContext& ctx) override;

 private:
  LocalStoreSource(std::string name, std::unique_ptr<xmlstore::XmlStore> owned)
      : name_(std::move(name)),
        owned_(std::move(owned)),
        store_(owned_.get()),
        executor_(owned_.get()) {}

  std::string name_;
  std::unique_ptr<xmlstore::XmlStore> owned_;  // null when externally owned
  const xmlstore::XmlStore* store_;
  query::QueryExecutor executor_;
};

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_LOCAL_SOURCE_H_
