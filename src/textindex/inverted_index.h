// Positional inverted index over text-bearing nodes.
//
// This is the reproduction of the Oracle Text index the paper's query path
// starts from: "the keyword-based context and content search is performed by
// first querying the text index for the search key. Each node returned from
// the index search is then processed based on its designated unique ROWID"
// (§2.1.4). Keys here are packed RowIds of stored text nodes.

#ifndef NETMARK_TEXTINDEX_INVERTED_INDEX_H_
#define NETMARK_TEXTINDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "textindex/tokenizer.h"

namespace netmark::textindex {

/// Opaque key of an indexed unit (NETMARK packs node RowIds here).
using DocKey = uint64_t;

/// Postings entry: one indexed unit and the positions of the term within it.
struct Posting {
  DocKey key;
  std::vector<uint32_t> positions;
};

/// Tokenized-and-grouped text of one indexed unit, computed away from the
/// index (e.g. on an ingestion worker thread) so the single-writer index
/// commit skips re-tokenization. Terms are sorted; positions are sorted and
/// deduplicated per term.
struct PreparedPostings {
  std::vector<std::pair<std::string, std::vector<uint32_t>>> terms;

  bool empty() const { return terms.empty(); }
};

/// \brief Tokenizes `text` into the grouped form AddPrepared consumes.
/// Pure function — safe to call concurrently from many threads.
PreparedPostings PreparePostings(std::string_view text);

/// \brief In-memory positional inverted index with incremental add/remove.
///
/// At store open the index is loaded from a token-validated snapshot
/// (textindex/snapshot.h) when one is fresh, and rebuilt from the XML store
/// otherwise — the store is always the durable copy.
///
/// Thread safety: internally synchronized. The single writer (Add /
/// AddPrepared / Remove / RestoreTerm) takes an internal lock exclusive;
/// lookups and Visit take it shared, so MVCC snapshot readers may query
/// while a commit mutates the index (docs/mvcc.md). Lookups are
/// writer-latest, not versioned — the query layer re-verifies every
/// candidate row against the heap at its snapshot epoch.
class InvertedIndex {
 public:
  InvertedIndex() = default;
  /// Movable (store open replaces the index with a loaded snapshot). The
  /// caller must quiesce both sides: the move itself is not synchronized
  /// against concurrent readers of `other`.
  InvertedIndex(InvertedIndex&& other) noexcept;
  InvertedIndex& operator=(InvertedIndex&& other) noexcept;
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Indexes `text` under `key`. A key may be added once; re-adding merges
  /// (used when node text is updated: Remove then Add).
  void Add(DocKey key, std::string_view text);

  /// Indexes pre-tokenized text under `key` — the bulk ingestion path.
  /// Equivalent to Add(key, text) when `prepared` came from
  /// PreparePostings(text), but does no tokenization or grouping work.
  void AddPrepared(DocKey key, const PreparedPostings& prepared);

  /// Removes `key`'s contribution; `text` must be the text it was added
  /// with (the index stores no forward map, by design — the store has it).
  void Remove(DocKey key, std::string_view text);

  /// Keys containing `term` (case-folded), sorted ascending.
  std::vector<DocKey> LookupTerm(std::string_view term) const;

  /// Keys containing *all* the given terms (conjunction), sorted.
  std::vector<DocKey> MatchAll(const std::vector<std::string>& terms) const;

  /// Keys containing *any* of the given terms (disjunction), sorted.
  std::vector<DocKey> MatchAny(const std::vector<std::string>& terms) const;

  /// Keys containing the exact phrase (terms at consecutive positions).
  std::vector<DocKey> MatchPhrase(const std::vector<std::string>& words) const;

  /// Keys containing any term starting with `prefix`.
  std::vector<DocKey> MatchPrefix(std::string_view prefix) const;

  size_t num_terms() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return postings_.size();
  }
  size_t num_postings() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return num_postings_;
  }

  /// Visits every term with its postings list, in term order (snapshotting).
  void Visit(const std::function<void(const std::string&,
                                      const std::vector<Posting>&)>& fn) const;

  /// Bulk-restores one term's postings (snapshot loading). The list must be
  /// sorted by key and the term must not already exist.
  void RestoreTerm(std::string term, std::vector<Posting> postings);

 private:
  /// Requires mu_ held (any mode).
  const std::vector<Posting>* Find(std::string_view term) const;
  /// LookupTerm body; requires mu_ held (any mode).
  std::vector<DocKey> LookupTermLocked(std::string_view term) const;

  /// Guards postings_ and num_postings_ (see the class comment).
  mutable std::shared_mutex mu_;
  // term -> postings sorted by key.
  std::map<std::string, std::vector<Posting>, std::less<>> postings_;
  size_t num_postings_ = 0;
};

}  // namespace netmark::textindex

#endif  // NETMARK_TEXTINDEX_INVERTED_INDEX_H_
