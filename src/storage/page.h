// Slotted page layout.
//
// A page is a fixed 8 KiB block:
//
//   [ header (8 bytes) | slot directory (4 bytes/slot, grows up) ...
//                  ... record data (grows down) | CRC32C trailer (4 bytes) ]
//
// Slots are never reused for a *different* record while the page lives, so a
// (page, slot) pair — a RowId — is a stable physical address. Deleted slots
// become tombstones.
//
// Format versions. Header byte 4 (byte 2 on overflow pages, whose bytes 4-7
// hold the next-page pointer) is the format version:
//   v0 — legacy: no trailer, records may extend to the last byte.
//   v1 — the last 4 bytes hold CRC32C over bytes [0, kPageSize-4).
// New pages are born v1; v0 pages coming off disk are upgraded in place at
// checkpoint when they have 4 spare bytes (see PageTryUpgradeV1), and are
// otherwise served unverified forever — stamping a CRC over live record
// bytes would corrupt them.

#ifndef NETMARK_STORAGE_PAGE_H_
#define NETMARK_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/crc32.h"

namespace netmark::storage {

inline constexpr size_t kPageSize = 8192;

/// Bytes reserved at the end of every v1 page for the CRC32C trailer.
inline constexpr size_t kPageTrailerSize = 4;

/// Current page format version.
inline constexpr uint8_t kPageFormatV1 = 1;

/// Offset value marking a deleted slot.
inline constexpr uint16_t kTombstoneOffset = 0xFFFF;

/// First-two-bytes marker distinguishing overflow pages from slotted pages
/// (a slotted page's slot_count can never reach 0xFFFF).
inline constexpr uint16_t kOverflowMarker = 0xFFFF;

/// \brief View/manipulator over one 8 KiB page buffer.
///
/// The Page does not own the buffer; the Pager does.
class Page {
 public:
  explicit Page(uint8_t* data) : data_(data) {}

  /// Initializes the header of a fresh (v1) page. The trailer is reserved
  /// unconditionally — whether it is *verified* is the pager's knob.
  void Init() {
    set_slot_count(0);
    set_free_end(static_cast<uint16_t>(kPageSize - kPageTrailerSize));
    data_[4] = kPageFormatV1;
    data_[5] = data_[6] = data_[7] = 0;
  }

  uint16_t slot_count() const { return Read16(0); }
  /// Offset of the lowest used data byte (records occupy [free_end, kPageSize)).
  uint16_t free_end() const { return Read16(2); }

  /// Bytes available for one more record (including its 4-byte slot).
  size_t FreeSpace() const {
    size_t dir_end = kHeaderSize + static_cast<size_t>(slot_count()) * kSlotSize;
    size_t fe = free_end();
    return fe > dir_end ? fe - dir_end : 0;
  }

  /// Can a record of `len` bytes be appended (new slot required)?
  bool CanInsert(size_t len) const { return FreeSpace() >= len + kSlotSize; }

  /// Appends a record, returning its slot index. Caller must CanInsert first.
  uint16_t Insert(std::string_view record) {
    uint16_t slot = slot_count();
    uint16_t new_end = static_cast<uint16_t>(free_end() - record.size());
    std::memcpy(data_ + new_end, record.data(), record.size());
    SetSlot(slot, new_end, static_cast<uint16_t>(record.size()));
    set_free_end(new_end);
    set_slot_count(static_cast<uint16_t>(slot + 1));
    return slot;
  }

  /// Record bytes at a slot; empty view for tombstones/bad slots.
  std::string_view Get(uint16_t slot) const {
    if (slot >= slot_count()) return {};
    auto [off, len] = GetSlot(slot);
    if (off == kTombstoneOffset) return {};
    return std::string_view(reinterpret_cast<const char*>(data_ + off), len);
  }

  bool IsLive(uint16_t slot) const {
    if (slot >= slot_count()) return false;
    return GetSlot(slot).first != kTombstoneOffset;
  }

  /// Tombstones a slot. Space is not reclaimed (no compaction), which keeps
  /// all other slots' offsets — and thus RowIds — stable.
  void Delete(uint16_t slot) { SetSlot(slot, kTombstoneOffset, 0); }

  /// Overwrites a record in place; only legal when the new record is no
  /// longer than the old one (caller checks).
  void UpdateInPlace(uint16_t slot, std::string_view record) {
    auto [off, len] = GetSlot(slot);
    std::memcpy(data_ + off, record.data(), record.size());
    SetSlot(slot, off, static_cast<uint16_t>(record.size()));
  }

  /// Length of the record stored at a slot (0 for tombstones).
  uint16_t RecordLength(uint16_t slot) const { return GetSlot(slot).second; }

  uint8_t* raw() { return data_; }
  const uint8_t* raw() const { return data_; }

  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kSlotSize = 4;
  /// Largest record that fits in an empty (v1) page.
  static constexpr size_t kMaxInlineRecord =
      kPageSize - kHeaderSize - kSlotSize - kPageTrailerSize;

 private:
  uint16_t Read16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data_ + off, 2);
    return v;
  }
  void Write16(size_t off, uint16_t v) { std::memcpy(data_ + off, &v, 2); }

  void set_slot_count(uint16_t v) { Write16(0, v); }
  void set_free_end(uint16_t v) { Write16(2, v); }

  std::pair<uint16_t, uint16_t> GetSlot(uint16_t slot) const {
    size_t base = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
    return {Read16(base), Read16(base + 2)};
  }
  void SetSlot(uint16_t slot, uint16_t off, uint16_t len) {
    size_t base = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
    Write16(base, off);
    Write16(base + 2, len);
  }

  uint8_t* data_;
};

/// True when the buffer holds an overflow page (kOverflowMarker at bytes 0-1).
inline bool PageIsOverflow(const uint8_t* data) {
  uint16_t marker;
  std::memcpy(&marker, data, 2);
  return marker == kOverflowMarker;
}

/// Format version of a page of either layout.
inline uint8_t PageVersion(const uint8_t* data) {
  return PageIsOverflow(data) ? data[2] : data[4];
}

/// Whether the page carries a CRC32C trailer.
inline bool PageHasChecksum(const uint8_t* data) {
  return PageVersion(data) >= kPageFormatV1;
}

/// CRC32C over everything but the trailer.
inline uint32_t PageComputeCrc(const uint8_t* data) {
  return Crc32c(data, kPageSize - kPageTrailerSize);
}

/// Writes the trailer on a v1 page; no-op on v0 (the last 4 bytes of a v0
/// page may be live record data).
inline void PageStampChecksum(uint8_t* data) {
  if (!PageHasChecksum(data)) return;
  uint32_t crc = PageComputeCrc(data);
  std::memcpy(data + kPageSize - kPageTrailerSize, &crc, kPageTrailerSize);
}

/// True when the trailer matches — or when the page is v0 and therefore
/// unverifiable.
inline bool PageVerifyChecksum(const uint8_t* data) {
  if (!PageHasChecksum(data)) return true;
  uint32_t stored;
  std::memcpy(&stored, data + kPageSize - kPageTrailerSize, kPageTrailerSize);
  return stored == PageComputeCrc(data);
}

/// Upgrades a v0 page to v1 in place when 4 spare bytes exist: slotted pages
/// shift their record block down by the trailer size (slot offsets follow),
/// overflow pages only need spare room after the chunk. Returns true when the
/// buffer was modified; false when already v1 or when the page is too full to
/// upgrade (it stays v0, served unverified).
inline bool PageTryUpgradeV1(uint8_t* data) {
  if (PageHasChecksum(data)) return false;
  if (PageIsOverflow(data)) {
    uint32_t len;
    std::memcpy(&len, data + 8, 4);
    constexpr size_t kOverflowHeader = 12;
    if (len > kPageSize - kOverflowHeader - kPageTrailerSize) return false;
    data[2] = kPageFormatV1;
    return true;
  }
  Page page(data);
  if (page.FreeSpace() < kPageTrailerSize) return false;
  uint16_t old_end = page.free_end();
  size_t record_bytes = kPageSize - old_end;
  uint16_t new_end = static_cast<uint16_t>(old_end - kPageTrailerSize);
  std::memmove(data + new_end, data + old_end, record_bytes);
  for (uint16_t slot = 0; slot < page.slot_count(); ++slot) {
    size_t base = Page::kHeaderSize + static_cast<size_t>(slot) * Page::kSlotSize;
    uint16_t off;
    std::memcpy(&off, data + base, 2);
    if (off == kTombstoneOffset) continue;
    off = static_cast<uint16_t>(off - kPageTrailerSize);
    std::memcpy(data + base, &off, 2);
  }
  std::memcpy(data + 2, &new_end, 2);
  data[4] = kPageFormatV1;
  return true;
}

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_PAGE_H_
