// Shredding baseline: schema-per-document-type XML storage.
//
// This reproduces the approach the paper contrasts NETMARK against
// (Shanmugasundaram et al., "A General Technique for Querying XML Documents
// using a Relational Database System" [10]): XML documents are "shredded"
// into relational tables, with *different relations for different XML
// element types*. Consequences measured by bench_fig5_storage:
//
//  * the first document of each new type triggers DDL (CREATE TABLE per
//    element tag it contains);
//  * later documents of the same type that introduce new tags trigger more
//    DDL;
//  * NETMARK, by contrast, issues a constant amount of DDL for any corpus.

#ifndef NETMARK_BASELINE_SHREDDING_STORE_H_
#define NETMARK_BASELINE_SHREDDING_STORE_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/result.h"
#include "storage/database.h"
#include "xml/dom.h"
#include "xmlstore/xml_store.h"

namespace netmark::baseline {

/// \brief Schema-centric document store.
class ShreddingStore {
 public:
  static netmark::Result<std::unique_ptr<ShreddingStore>> Open(const std::string& dir);

  /// Shreds a document. The document's *type* is its root element name; a
  /// new type (or new tags within a known type) costs DDL.
  netmark::Result<int64_t> InsertDocument(const xml::Document& doc,
                                          const xmlstore::DocumentInfo& info);

  /// Rebuilds a document from its shredded rows.
  netmark::Result<xml::Document> Reconstruct(int64_t doc_id);

  uint64_t document_count() const;
  /// Total DDL statements issued (the schema-management cost).
  uint64_t ddl_statements() const { return db_->ddl_statements(); }
  /// Number of per-type element tables created.
  size_t table_count() const;

  storage::Database* database() { return db_.get(); }

 private:
  explicit ShreddingStore(std::unique_ptr<storage::Database> db)
      : db_(std::move(db)) {}
  netmark::Status EnsureCatalogTables();
  /// Ensures `type`'s table for `tag` exists (DDL when missing).
  netmark::Result<storage::Table*> EnsureTagTable(const std::string& type,
                                                  const std::string& tag);
  static std::string TableNameFor(const std::string& type, const std::string& tag);

  std::unique_ptr<storage::Database> db_;
  storage::Table* docs_table_ = nullptr;
  int64_t next_doc_id_ = 1;
  // type -> known tags (mirrors the catalog; avoids repeated lookups).
  std::map<std::string, std::set<std::string>> known_tags_;
};

/// \brief Sanitizes an element tag for use inside a table name.
std::string SanitizeTag(std::string_view tag);

}  // namespace netmark::baseline

#endif  // NETMARK_BASELINE_SHREDDING_STORE_H_
