#include "xslt/xpath.h"

#include <algorithm>

#include "common/string_util.h"

namespace netmark::xslt {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == ':' || c == '.';
}

}  // namespace

netmark::Result<XPath> XPath::Parse(std::string_view expr) {
  XPath path;
  path.expr_ = std::string(netmark::TrimView(expr));
  std::string_view s = path.expr_;
  if (s.empty()) {
    return netmark::Status::ParseError("empty XPath expression");
  }
  size_t i = 0;
  if (s[0] == '/') {
    path.absolute_ = true;
    ++i;
    // A bare leading "//" means descendant from root.
  }
  bool pending_descendant = false;
  if (i < s.size() && s[i] == '/') {
    pending_descendant = true;
    ++i;
  }
  if (i >= s.size()) {
    if (path.absolute_ && !pending_descendant) return path;  // "/" = root
    return netmark::Status::ParseError("dangling '/' in XPath: " + path.expr_);
  }
  while (i < s.size()) {
    Step step;
    if (pending_descendant) {
      step.axis = Step::Axis::kDescendant;
      pending_descendant = false;
    }
    if (s.compare(i, 2, "..") == 0) {
      step.axis = Step::Axis::kParent;
      step.name = "*";
      i += 2;
    } else if (s[i] == '.') {
      step.axis = Step::Axis::kSelf;
      step.name = "*";
      ++i;
    } else {
      if (s[i] == '@') {
        step.axis = Step::Axis::kAttribute;
        ++i;
      }
      if (i < s.size() && s[i] == '*') {
        step.name = "*";
        ++i;
      } else {
        size_t start = i;
        while (i < s.size() && IsNameChar(s[i])) ++i;
        if (i == start) {
          return netmark::Status::ParseError("expected name in XPath at '" +
                                             std::string(s.substr(i)) + "'");
        }
        step.name = std::string(s.substr(start, i - start));
        if (i + 1 < s.size() && s[i] == '(' && s[i + 1] == ')') {
          step.name += "()";
          i += 2;
        }
      }
    }
    // Optional predicate.
    if (i < s.size() && s[i] == '[') {
      size_t close = s.find(']', i);
      if (close == std::string_view::npos) {
        return netmark::Status::ParseError("unterminated predicate in " + path.expr_);
      }
      std::string_view body = netmark::TrimView(s.substr(i + 1, close - i - 1));
      if (body.empty()) {
        return netmark::Status::ParseError("empty predicate in " + path.expr_);
      }
      auto number = netmark::ParseInt64(body);
      if (number.ok()) {
        step.pred = Step::PredKind::kIndex;
        step.index = static_cast<int>(*number);
        if (step.index < 1) {
          return netmark::Status::ParseError("positional predicate must be >= 1");
        }
      } else {
        bool attr = false;
        if (body[0] == '@') {
          attr = true;
          body.remove_prefix(1);
        }
        size_t eq = body.find('=');
        if (eq == std::string_view::npos) {
          step.pred = attr ? Step::PredKind::kAttrExists : Step::PredKind::kChildExists;
          step.pred_name = netmark::Trim(body);
        } else {
          step.pred = attr ? Step::PredKind::kAttrEquals : Step::PredKind::kChildEquals;
          step.pred_name = netmark::Trim(body.substr(0, eq));
          std::string_view value = netmark::TrimView(body.substr(eq + 1));
          if (value.size() < 2 || (value.front() != '\'' && value.front() != '"') ||
              value.back() != value.front()) {
            return netmark::Status::ParseError("predicate value must be quoted in " +
                                               path.expr_);
          }
          step.pred_value = std::string(value.substr(1, value.size() - 2));
        }
        if (step.pred_name.empty()) {
          return netmark::Status::ParseError("empty predicate name in " + path.expr_);
        }
      }
      i = close + 1;
    }
    path.steps_.push_back(std::move(step));
    if (i < s.size()) {
      if (s[i] != '/') {
        return netmark::Status::ParseError("expected '/' in XPath at '" +
                                           std::string(s.substr(i)) + "'");
      }
      ++i;
      if (i < s.size() && s[i] == '/') {
        pending_descendant = true;
        ++i;
      }
      if (i >= s.size()) {
        return netmark::Status::ParseError("dangling '/' in XPath: " + path.expr_);
      }
    }
  }
  return path;
}

bool XPath::PredicateHolds(const xml::Document& doc, xml::NodeId node,
                           const Step& step) const {
  switch (step.pred) {
    case Step::PredKind::kNone:
    case Step::PredKind::kIndex:  // handled positionally by the caller
      return true;
    case Step::PredKind::kAttrExists:
      return doc.HasAttribute(node, step.pred_name);
    case Step::PredKind::kAttrEquals:
      return doc.HasAttribute(node, step.pred_name) &&
             doc.GetAttribute(node, step.pred_name) == step.pred_value;
    case Step::PredKind::kChildExists:
      return doc.FirstChildElement(node, step.pred_name) != xml::kInvalidNode;
    case Step::PredKind::kChildEquals: {
      for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
           c = doc.next_sibling(c)) {
        if (doc.kind(c) == xml::NodeKind::kElement && doc.name(c) == step.pred_name &&
            doc.TextContent(c) == step.pred_value) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

namespace {

bool NameMatches(const xml::Document& doc, xml::NodeId node, const std::string& test) {
  if (test == "text()") {
    return doc.kind(node) == xml::NodeKind::kText ||
           doc.kind(node) == xml::NodeKind::kCData;
  }
  if (doc.kind(node) != xml::NodeKind::kElement) return false;
  return test == "*" || doc.name(node) == test;
}

void CollectDescendants(const xml::Document& doc, xml::NodeId node,
                        std::vector<xml::NodeId>* out) {
  out->push_back(node);
  for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
       c = doc.next_sibling(c)) {
    CollectDescendants(doc, c, out);
  }
}

}  // namespace

std::vector<xml::NodeId> XPath::Apply(const xml::Document& doc,
                                      const std::vector<xml::NodeId>& context,
                                      size_t from) const {
  std::vector<xml::NodeId> current = context;
  for (size_t si = from; si < steps_.size(); ++si) {
    const Step& step = steps_[si];
    if (step.axis == Step::Axis::kAttribute) {
      // Attribute steps terminate node selection; SelectNodes yields nothing,
      // EvaluateStrings handles them separately.
      return {};
    }
    std::vector<xml::NodeId> next;
    for (xml::NodeId node : current) {
      std::vector<xml::NodeId> matched;
      switch (step.axis) {
        case Step::Axis::kSelf:
          matched.push_back(node);
          break;
        case Step::Axis::kParent: {
          xml::NodeId p = doc.parent(node);
          if (p != xml::kInvalidNode) matched.push_back(p);
          break;
        }
        case Step::Axis::kDescendant: {
          std::vector<xml::NodeId> all;
          CollectDescendants(doc, node, &all);
          for (xml::NodeId d : all) {
            if (NameMatches(doc, d, step.name)) matched.push_back(d);
          }
          break;
        }
        case Step::Axis::kChild:
        default: {
          for (xml::NodeId c = doc.first_child(node); c != xml::kInvalidNode;
               c = doc.next_sibling(c)) {
            if (NameMatches(doc, c, step.name)) matched.push_back(c);
          }
          break;
        }
      }
      // Predicates filter per context node (XPath positional semantics are
      // relative to each context node's match list).
      std::vector<xml::NodeId> kept;
      int position = 0;
      for (xml::NodeId m : matched) {
        if (!PredicateHolds(doc, m, step)) continue;
        ++position;
        if (step.pred == Step::PredKind::kIndex && position != step.index) continue;
        kept.push_back(m);
      }
      next.insert(next.end(), kept.begin(), kept.end());
    }
    // De-duplicate while keeping document order stability (ids ascend in
    // creation order which matches document order for parsed docs).
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

std::vector<xml::NodeId> XPath::SelectNodes(const xml::Document& doc,
                                            xml::NodeId context) const {
  std::vector<xml::NodeId> start = {absolute_ ? doc.root() : context};
  return Apply(doc, start, 0);
}

std::vector<std::string> XPath::EvaluateStrings(const xml::Document& doc,
                                                xml::NodeId context) const {
  // Attribute-final paths need the node-set up to the last step.
  if (!steps_.empty() && steps_.back().axis == Step::Axis::kAttribute) {
    XPath prefix = *this;
    Step last = prefix.steps_.back();
    prefix.steps_.pop_back();
    std::vector<xml::NodeId> nodes = prefix.SelectNodes(doc, context);
    std::vector<std::string> out;
    for (xml::NodeId n : nodes) {
      if (last.name == "*") {
        for (const xml::Attribute& a : doc.attributes(n)) out.push_back(a.value);
      } else if (doc.HasAttribute(n, last.name)) {
        out.emplace_back(doc.GetAttribute(n, last.name));
      }
    }
    return out;
  }
  std::vector<std::string> out;
  for (xml::NodeId n : SelectNodes(doc, context)) {
    out.push_back(doc.kind(n) == xml::NodeKind::kText ||
                          doc.kind(n) == xml::NodeKind::kCData
                      ? doc.data(n)
                      : doc.TextContent(n));
  }
  return out;
}

std::string XPath::EvaluateString(const xml::Document& doc, xml::NodeId context) const {
  std::vector<std::string> strings = EvaluateStrings(doc, context);
  return strings.empty() ? "" : strings.front();
}

bool XPath::EvaluateBool(const xml::Document& doc, xml::NodeId context) const {
  if (!steps_.empty() && steps_.back().axis == Step::Axis::kAttribute) {
    return !EvaluateStrings(doc, context).empty();
  }
  return !SelectNodes(doc, context).empty();
}

}  // namespace netmark::xslt
