#include "query/xdb_query.h"

#include "common/string_util.h"

namespace netmark::query {

netmark::Result<XdbQuery> ParseXdbQuery(std::string_view query_string) {
  XdbQuery query;
  if (netmark::TrimView(query_string).empty()) return query;
  for (const std::string& pair : netmark::Split(query_string, '&')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    std::string key = netmark::ToLower(eq == std::string::npos ? pair
                                                               : pair.substr(0, eq));
    std::string raw_value = eq == std::string::npos ? "" : pair.substr(eq + 1);
    NETMARK_ASSIGN_OR_RETURN(std::string value, netmark::UrlDecode(raw_value));
    if (key == "context") {
      // Search keys normalize hard (whitespace runs collapse) so every
      // spelling of a query — `Context=Technology+Gap`,
      // `context=Technology%20Gap`, `CONTEXT=Technology++Gap` — parses to
      // one canonical form and shares one result-cache entry.
      query.context = netmark::NormalizeWhitespace(value);
    } else if (key == "content") {
      query.content = netmark::NormalizeWhitespace(value);
    } else if (key == "doc" || key == "docid") {
      NETMARK_ASSIGN_OR_RETURN(query.doc_id, netmark::ParseInt64(value));
    } else if (key == "xpath") {
      query.xpath = netmark::Trim(value);
    } else if (key == "xslt") {
      query.xslt = netmark::Trim(value);
    } else if (key == "limit") {
      NETMARK_ASSIGN_OR_RETURN(int64_t limit, netmark::ParseInt64(value));
      if (limit < 0) {
        return netmark::Status::InvalidArgument("limit must be non-negative");
      }
      query.limit = static_cast<size_t>(limit);
    } else if (key == "timeout") {
      NETMARK_ASSIGN_OR_RETURN(query.timeout_ms, netmark::ParseInt64(value));
      if (query.timeout_ms < 0) {
        return netmark::Status::InvalidArgument("timeout must be non-negative");
      }
    }
    // Unknown keys ignored.
  }
  return query;
}

std::string XdbQuery::ToQueryString() const {
  std::string out;
  auto append = [&](std::string_view key, std::string_view value) {
    if (value.empty()) return;
    if (!out.empty()) out += '&';
    out += key;
    out += '=';
    out += netmark::UrlEncode(value);
  };
  append("context", context);
  append("content", content);
  append("xpath", xpath);
  if (doc_id != 0) append("doc", std::to_string(doc_id));
  append("xslt", xslt);
  if (limit != 0) append("limit", std::to_string(limit));
  if (timeout_ms != 0) append("timeout", std::to_string(timeout_ms));
  return out;
}

}  // namespace netmark::query
