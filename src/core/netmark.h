// Netmark: the top-level facade — one object wiring the XML store,
// converters, query engine, XSLT composition, federation router, HTTP
// server and ingestion daemon together. This is the API the examples and
// applications use.
//
// Quickstart:
//
//   auto nm = netmark::Netmark::Open({.data_dir = "/tmp/nm"});
//   (*nm)->IngestContent("report.txt", "OVERVIEW\nThe shuttle engine ...");
//   auto hits = (*nm)->Query("context=Overview&content=engine");
//   auto xml  = (*nm)->QueryToXml("context=Overview");

#ifndef NETMARK_CORE_NETMARK_H_
#define NETMARK_CORE_NETMARK_H_

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "convert/registry.h"
#include "federation/router.h"
#include "observability/metrics.h"
#include "observability/slow_log.h"
#include "query/compose.h"
#include "query/executor.h"
#include "server/daemon.h"
#include "server/http_server.h"
#include "server/netmark_service.h"
#include "storage/database.h"
#include "xmlstore/xml_store.h"
#include "xslt/stylesheet.h"

namespace netmark {

/// Construction options.
struct NetmarkOptions {
  /// Directory holding the store (created if missing).
  std::string data_dir;
  /// Node-type rules for the SGML parser (CONTEXT/INTENSE/SIMULATION tags).
  xml::NodeTypeConfig node_types = xml::NodeTypeConfig::Default();
  /// Durability knobs: write-ahead log, fsync policy, checkpoint trigger
  /// (the `[storage]` INI section).
  storage::StorageOptions storage;
  /// Federation resilience knobs (deadlines, retries, breakers, fan-out).
  federation::RouterOptions router;
  /// Serving knobs: worker-pool size, accept-queue capacity, keep-alive
  /// limits and timeouts for StartServer.
  server::HttpServerOptions http_server;
  /// Slow-query log threshold (ms; 0 disables). The NETMARK_SLOW_QUERY_MS
  /// env var always wins.
  int64_t slow_query_ms = observability::kDefaultSlowQueryMs;
  /// Result-cache sizing (the `[query]` INI section: cache_enabled /
  /// cache_entries / cache_bytes). Entries are keyed by (canonical query,
  /// commit epoch) — see docs/query_cache.md.
  query::ResultCacheOptions query_cache;
  /// Compiled-plan cache sizing (`[query] plan_entries`).
  query::QueryPlanCache::Options plan_cache;
  /// Trace sampling / retention knobs (the `[observability]` INI section:
  /// trace_sample_rate, trace_store_capacity, trace_slow_keep_ms) backing
  /// GET /traces — see docs/observability.md.
  observability::TraceStoreOptions trace_store;
};

/// \brief One NETMARK instance.
class Netmark {
 public:
  static Result<std::unique_ptr<Netmark>> Open(const NetmarkOptions& options);
  ~Netmark();

  // --- Ingestion ---

  /// Converts (per extension/content sniffing) and stores a file from disk.
  Result<int64_t> IngestFile(const std::filesystem::path& path);
  /// Converts and stores in-memory content under a file name.
  Result<int64_t> IngestContent(const std::string& file_name,
                                std::string_view content);

  // --- Query ---

  /// Parses and executes an XDB query string ("context=...&content=...").
  Result<std::vector<query::QueryHit>> Query(const std::string& query_string);
  /// Executes and composes results into serialized XML.
  Result<std::string> QueryToXml(const std::string& query_string);
  /// Executes, composes, and transforms through an XSLT stylesheet.
  Result<std::string> QueryAndTransform(const std::string& query_string,
                                        std::string_view stylesheet_text);

  // --- Documents ---

  Result<std::string> GetDocumentXml(int64_t doc_id) const;
  Status DeleteDocument(int64_t doc_id);
  Result<std::vector<xmlstore::DocRecord>> ListDocuments() const;

  // --- Federation (databanks) ---

  /// Registers this instance's store as a federated source.
  Status RegisterSelfAsSource(const std::string& source_name);
  /// Registers any source (content-only servers, remote instances...).
  Status RegisterSource(std::shared_ptr<federation::Source> source);
  /// Declares a databank — the paper's one-line integration step.
  Status DefineDatabank(const std::string& name,
                        std::vector<std::string> source_names);
  /// Queries a databank through the thin router.
  Result<std::vector<federation::FederatedHit>> QueryDatabank(
      const std::string& databank, const std::string& query_string);
  /// Queries a databank, returning hits plus the per-source outcome report
  /// and per-query stats (partial-result semantics).
  Result<federation::FederatedResult> QueryDatabankFederated(
      const std::string& databank, const std::string& query_string);

  // --- Services ---

  /// Starts the HTTP endpoint (port 0 = ephemeral; see server_port()).
  Status StartServer(uint16_t port = 0);
  void StopServer();
  uint16_t server_port() const;
  /// Registers a named stylesheet for `xslt=` query parameters.
  Status RegisterStylesheet(const std::string& name, std::string_view text);

  /// Starts the drop-folder ingestion daemon with default options.
  Status StartDaemon(const std::filesystem::path& drop_dir);
  /// Starts the daemon with full control over polling, worker threads and
  /// drop-stability behaviour (opts.drop_dir must be set).
  Status StartDaemon(server::DaemonOptions opts);
  void StopDaemon();
  /// Synchronous single sweep (deterministic ingestion without the thread).
  Result<int> ProcessDropFolderOnce();
  /// The running daemon (per-stage counters live here); null until
  /// StartDaemon.
  server::IngestionDaemon* daemon() { return daemon_.get(); }

  // --- Accessors ---

  /// The serving knobs StartServer uses (connection model, pool sizing).
  const server::HttpServerOptions& http_server_options() const {
    return options_.http_server;
  }
  xmlstore::XmlStore* store() { return store_.get(); }
  const xmlstore::XmlStore* store() const { return store_.get(); }
  federation::Router* router() { return &router_; }
  const convert::ConverterRegistry& converters() const { return converters_; }
  server::NetmarkService* service() { return service_.get(); }
  /// The instance-wide metrics registry (what GET /metrics renders): router,
  /// daemon, executor and HTTP metrics are all re-homed onto it at Open().
  observability::MetricsRegistry* metrics() { return metrics_.get(); }
  /// The retained-trace ring (what GET /traces serves).
  observability::TraceStore* trace_store() { return service_->trace_store(); }

 private:
  explicit Netmark(NetmarkOptions options)
      : options_(std::move(options)), router_(options_.router) {}

  NetmarkOptions options_;
  std::unique_ptr<xmlstore::XmlStore> store_;
  convert::ConverterRegistry converters_ = convert::ConverterRegistry::Default();
  /// Declared before router_ (and the rest): components keep raw handles
  /// into the registry, so it must outlive them all.
  std::unique_ptr<observability::MetricsRegistry> metrics_ =
      std::make_unique<observability::MetricsRegistry>();
  federation::Router router_;
  std::unique_ptr<server::NetmarkService> service_;
  std::unique_ptr<server::HttpServer> http_server_;
  std::unique_ptr<server::IngestionDaemon> daemon_;
};

}  // namespace netmark

#endif  // NETMARK_CORE_NETMARK_H_
