#include "xml/dom.h"

#include <gtest/gtest.h>

namespace netmark::xml {
namespace {

TEST(DomTest, EmptyDocumentHasOnlyRoot) {
  Document doc;
  EXPECT_EQ(doc.size(), 1u);
  EXPECT_EQ(doc.kind(doc.root()), NodeKind::kDocument);
  EXPECT_EQ(doc.first_child(doc.root()), kInvalidNode);
  EXPECT_EQ(doc.DocumentElement(), kInvalidNode);
}

TEST(DomTest, AppendChildLinksSiblings) {
  Document doc;
  NodeId a = doc.CreateElement("a");
  NodeId b = doc.CreateElement("b");
  NodeId c = doc.CreateElement("c");
  doc.AppendChild(doc.root(), a);
  doc.AppendChild(doc.root(), b);
  doc.AppendChild(doc.root(), c);

  EXPECT_EQ(doc.first_child(doc.root()), a);
  EXPECT_EQ(doc.last_child(doc.root()), c);
  EXPECT_EQ(doc.next_sibling(a), b);
  EXPECT_EQ(doc.next_sibling(b), c);
  EXPECT_EQ(doc.next_sibling(c), kInvalidNode);
  EXPECT_EQ(doc.prev_sibling(c), b);
  EXPECT_EQ(doc.prev_sibling(a), kInvalidNode);
  EXPECT_EQ(doc.parent(b), doc.root());
}

TEST(DomTest, InsertBeforeMaintainsOrder) {
  Document doc;
  NodeId a = doc.CreateElement("a");
  NodeId c = doc.CreateElement("c");
  doc.AppendChild(doc.root(), a);
  doc.AppendChild(doc.root(), c);
  NodeId b = doc.CreateElement("b");
  doc.InsertBefore(doc.root(), b, c);
  NodeId front = doc.CreateElement("front");
  doc.InsertBefore(doc.root(), front, a);

  auto kids = doc.Children(doc.root());
  ASSERT_EQ(kids.size(), 4u);
  EXPECT_EQ(doc.name(kids[0]), "front");
  EXPECT_EQ(doc.name(kids[1]), "a");
  EXPECT_EQ(doc.name(kids[2]), "b");
  EXPECT_EQ(doc.name(kids[3]), "c");
}

TEST(DomTest, DetachUnlinksMiddleChild) {
  Document doc;
  NodeId a = doc.CreateElement("a");
  NodeId b = doc.CreateElement("b");
  NodeId c = doc.CreateElement("c");
  doc.AppendChild(doc.root(), a);
  doc.AppendChild(doc.root(), b);
  doc.AppendChild(doc.root(), c);
  doc.Detach(b);

  auto kids = doc.Children(doc.root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(doc.next_sibling(a), c);
  EXPECT_EQ(doc.prev_sibling(c), a);
  EXPECT_EQ(doc.parent(b), kInvalidNode);
}

TEST(DomTest, DetachFirstAndLast) {
  Document doc;
  NodeId a = doc.CreateElement("a");
  NodeId b = doc.CreateElement("b");
  doc.AppendChild(doc.root(), a);
  doc.AppendChild(doc.root(), b);
  doc.Detach(a);
  EXPECT_EQ(doc.first_child(doc.root()), b);
  doc.Detach(b);
  EXPECT_EQ(doc.first_child(doc.root()), kInvalidNode);
  EXPECT_EQ(doc.last_child(doc.root()), kInvalidNode);
}

TEST(DomTest, AttributesSetGetReplace) {
  Document doc;
  NodeId el = doc.CreateElement("e");
  doc.AddAttribute(el, "id", "1");
  EXPECT_EQ(doc.GetAttribute(el, "id"), "1");
  EXPECT_TRUE(doc.HasAttribute(el, "id"));
  EXPECT_FALSE(doc.HasAttribute(el, "class"));
  doc.SetAttribute(el, "id", "2");
  EXPECT_EQ(doc.GetAttribute(el, "id"), "2");
  EXPECT_EQ(doc.attributes(el).size(), 1u);
  doc.SetAttribute(el, "class", "x");
  EXPECT_EQ(doc.attributes(el).size(), 2u);
  EXPECT_EQ(doc.GetAttribute(el, "missing"), "");
}

TEST(DomTest, TextContentConcatenatesDescendants) {
  Document doc;
  NodeId div = doc.CreateElement("div");
  doc.AppendChild(doc.root(), div);
  doc.AppendChild(div, doc.CreateText("Hello "));
  NodeId b = doc.CreateElement("b");
  doc.AppendChild(div, b);
  doc.AppendChild(b, doc.CreateText("bold"));
  doc.AppendChild(div, doc.CreateText(" world"));
  doc.AppendChild(div, doc.CreateComment("ignored"));
  EXPECT_EQ(doc.TextContent(div), "Hello bold world");
}

TEST(DomTest, DescendantsIsPreOrder) {
  Document doc;
  NodeId a = doc.CreateElement("a");
  NodeId b = doc.CreateElement("b");
  NodeId c = doc.CreateElement("c");
  NodeId d = doc.CreateElement("d");
  doc.AppendChild(doc.root(), a);
  doc.AppendChild(a, b);
  doc.AppendChild(b, c);
  doc.AppendChild(a, d);
  auto walk = doc.Descendants(a);
  ASSERT_EQ(walk.size(), 4u);
  EXPECT_EQ(walk[0], a);
  EXPECT_EQ(walk[1], b);
  EXPECT_EQ(walk[2], c);
  EXPECT_EQ(walk[3], d);
  EXPECT_EQ(doc.SubtreeSize(a), 4u);
  EXPECT_EQ(doc.Depth(c), 3);
}

TEST(DomTest, FirstChildElementSkipsTextAndFindsByName) {
  Document doc;
  NodeId parent = doc.CreateElement("p");
  doc.AppendChild(doc.root(), parent);
  doc.AppendChild(parent, doc.CreateText("txt"));
  NodeId x = doc.CreateElement("x");
  NodeId y = doc.CreateElement("y");
  doc.AppendChild(parent, x);
  doc.AppendChild(parent, y);
  EXPECT_EQ(doc.FirstChildElement(parent, "y"), y);
  EXPECT_EQ(doc.FirstChildElement(parent, "z"), kInvalidNode);
  EXPECT_EQ(doc.ChildElements(parent).size(), 2u);
}

TEST(DomTest, ImportSubtreeDeepCopies) {
  Document src;
  NodeId el = src.CreateElement("section");
  src.AddAttribute(el, "id", "s1");
  src.AppendChild(src.root(), el);
  src.AppendChild(el, src.CreateText("body"));

  Document dst;
  NodeId copy = dst.ImportSubtree(src, el);
  dst.AppendChild(dst.root(), copy);
  EXPECT_TRUE(Document::SubtreeEquals(src, el, dst, copy));
  // Mutating the copy must not affect the source.
  dst.SetAttribute(copy, "id", "changed");
  EXPECT_EQ(src.GetAttribute(el, "id"), "s1");
}

TEST(DomTest, SubtreeEqualsDetectsDifferences) {
  Document a;
  NodeId ea = a.CreateElement("x");
  a.AppendChild(a.root(), ea);
  a.AppendChild(ea, a.CreateText("t"));

  Document b;
  NodeId eb = b.CreateElement("x");
  b.AppendChild(b.root(), eb);
  b.AppendChild(eb, b.CreateText("t"));
  EXPECT_TRUE(Document::SubtreeEquals(a, ea, b, eb));

  b.AppendChild(eb, b.CreateText("extra"));
  EXPECT_FALSE(Document::SubtreeEquals(a, ea, b, eb));
}

}  // namespace
}  // namespace netmark::xml
