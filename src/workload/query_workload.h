// Query workload generation + GAV-side synthetic data (employee records for
// the paper's "Top Employees of NASA" example).

#ifndef NETMARK_WORKLOAD_QUERY_WORKLOAD_H_
#define NETMARK_WORKLOAD_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "baseline/gav_mediator.h"
#include "common/rng.h"
#include "query/xdb_query.h"

namespace netmark::workload {

/// \brief Deterministic stream of XDB queries over the standard corpus
/// vocabulary: a mix of context-only, content-only, and combined queries.
class QueryWorkload {
 public:
  explicit QueryWorkload(uint64_t seed) : rng_(seed) {}

  /// Next query; `mix` proportions: {context-only, content-only, combined}.
  query::XdbQuery Next(double context_only = 0.4, double content_only = 0.3);

  netmark::Rng* rng() { return &rng_; }

 private:
  netmark::Rng rng_;
};

/// \brief Synthesizes one NASA center's employee source for the GAV
/// mediator, using center-specific attribute names and rating scales — the
/// heterogeneity that forces per-source mappings.
baseline::RecordSource EmployeeSource(uint64_t seed, const std::string& center,
                                      size_t n_employees);

}  // namespace netmark::workload

#endif  // NETMARK_WORKLOAD_QUERY_WORKLOAD_H_
