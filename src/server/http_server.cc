#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace netmark::server {

namespace {

// Reads one full HTTP message from a socket: head until CRLFCRLF, then
// Content-Length body bytes.
netmark::Result<std::string> ReadHttpMessage(int fd) {
  std::string buffer;
  char chunk[4096];
  size_t head_end = std::string::npos;
  while (head_end == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return netmark::Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      return netmark::Status::IOError("connection closed mid-request");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    head_end = buffer.find("\r\n\r\n");
    if (buffer.size() > 64 * 1024 * 1024) {
      return netmark::Status::CapacityExceeded("HTTP head too large");
    }
  }
  // Parse Content-Length out of the head.
  size_t body_have = buffer.size() - (head_end + 4);
  size_t body_want = 0;
  {
    std::string head = netmark::ToLower(buffer.substr(0, head_end));
    size_t cl = head.find("content-length:");
    if (cl != std::string::npos) {
      size_t eol = head.find("\r\n", cl);
      auto value = netmark::ParseInt64(
          head.substr(cl + 15, eol == std::string::npos ? std::string::npos
                                                        : eol - cl - 15));
      if (value.ok() && *value >= 0) body_want = static_cast<size_t>(*value);
    }
  }
  while (body_have < body_want) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return netmark::Status::IOError(std::string("recv body: ") + std::strerror(errno));
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    body_have += static_cast<size_t>(n);
  }
  return buffer;
}

netmark::Status WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return netmark::Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return netmark::Status::OK();
}

}  // namespace

netmark::Status HttpServer::Start(uint16_t port) {
  if (running_.load()) return netmark::Status::AlreadyExists("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return netmark::Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return netmark::Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return netmark::Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return netmark::Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100 /* ms */);
    if (ready <= 0) continue;  // timeout/EINTR: re-check running_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  auto raw = ReadHttpMessage(fd);
  if (!raw.ok()) {
    NETMARK_LOG(Debug) << "bad connection: " << raw.status();
    return;
  }
  HttpResponse response;
  auto request = ParseRequest(*raw);
  if (!request.ok()) {
    response = HttpResponse::BadRequest(request.status().ToString());
  } else {
    response = handler_(*request);
  }
  requests_served_.fetch_add(1);
  (void)WriteAll(fd, response.Serialize());
}

}  // namespace netmark::server
