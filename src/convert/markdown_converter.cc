#include "convert/markdown_converter.h"

#include "common/string_util.h"

namespace netmark::convert {

namespace {

// Emits inline markdown (bold/italic/code spans) as child nodes of `parent`.
void EmitInline(xml::Document* doc, xml::NodeId parent, std::string_view text) {
  std::string plain;
  auto flush = [&]() {
    if (!plain.empty()) {
      doc->AppendChild(parent, doc->CreateText(std::move(plain)));
      plain.clear();
    }
  };
  size_t i = 0;
  while (i < text.size()) {
    if (text.compare(i, 2, "**") == 0) {
      size_t close = text.find("**", i + 2);
      if (close != std::string_view::npos) {
        flush();
        xml::NodeId b = doc->CreateElement("b");
        doc->AppendChild(b, doc->CreateText(std::string(text.substr(i + 2, close - i - 2))));
        doc->AppendChild(parent, b);
        i = close + 2;
        continue;
      }
    }
    if (text[i] == '*' && i + 1 < text.size() && text[i + 1] != '*') {
      size_t close = text.find('*', i + 1);
      if (close != std::string_view::npos) {
        flush();
        xml::NodeId em = doc->CreateElement("em");
        doc->AppendChild(em, doc->CreateText(std::string(text.substr(i + 1, close - i - 1))));
        doc->AppendChild(parent, em);
        i = close + 1;
        continue;
      }
    }
    if (text[i] == '`') {
      size_t close = text.find('`', i + 1);
      if (close != std::string_view::npos) {
        flush();
        xml::NodeId code = doc->CreateElement("code");
        doc->AppendChild(code,
                         doc->CreateText(std::string(text.substr(i + 1, close - i - 1))));
        doc->AppendChild(parent, code);
        i = close + 1;
        continue;
      }
    }
    plain += text[i];
    ++i;
  }
  flush();
}

}  // namespace

bool MarkdownConverter::Sniff(std::string_view content) const {
  // Look for markdown signals in the first few lines.
  int signals = 0;
  int lines = 0;
  for (const std::string& raw : netmark::Split(content.substr(0, 2000), '\n')) {
    std::string_view line = netmark::TrimView(raw);
    ++lines;
    if (lines > 40) break;
    if (netmark::StartsWith(line, "#")) ++signals;
    if (netmark::StartsWith(line, "- ") || netmark::StartsWith(line, "* ")) ++signals;
    if (netmark::StartsWith(line, "```")) ++signals;
  }
  return signals >= 2;
}

netmark::Result<xml::Document> MarkdownConverter::Convert(
    std::string_view content, const ConvertContext& ctx) const {
  UpmarkBuilder builder(ctx.file_name, format());
  xml::Document* doc = builder.doc();

  std::string paragraph;
  xml::NodeId list = xml::kInvalidNode;
  bool in_code = false;
  std::string code;

  auto flush_paragraph = [&]() {
    if (paragraph.empty()) return;
    xml::NodeId p = doc->CreateElement("p");
    EmitInline(doc, p, paragraph);
    builder.AddBlock(p);
    paragraph.clear();
  };
  auto flush_list = [&]() { list = xml::kInvalidNode; };
  auto flush_code = [&]() {
    if (!in_code) return;
    xml::NodeId pre = doc->CreateElement("pre");
    doc->AppendChild(pre, doc->CreateText(std::move(code)));
    builder.AddBlock(pre);
    code.clear();
    in_code = false;
  };

  for (const std::string& raw : netmark::Split(content, '\n')) {
    if (in_code) {
      if (netmark::StartsWith(netmark::TrimView(raw), "```")) {
        flush_code();
      } else {
        code += raw;
        code += '\n';
      }
      continue;
    }
    std::string_view line = netmark::TrimView(raw);
    if (line.empty()) {
      flush_paragraph();
      flush_list();
      continue;
    }
    if (netmark::StartsWith(line, "```")) {
      flush_paragraph();
      flush_list();
      in_code = true;
      continue;
    }
    if (line[0] == '#') {
      size_t level = 0;
      while (level < line.size() && line[level] == '#') ++level;
      if (level <= 6 && level < line.size() && line[level] == ' ') {
        flush_paragraph();
        flush_list();
        builder.BeginSection(netmark::Trim(line.substr(level + 1)));
        continue;
      }
    }
    if (netmark::StartsWith(line, "- ") || netmark::StartsWith(line, "* ")) {
      flush_paragraph();
      if (list == xml::kInvalidNode) {
        list = doc->CreateElement("ul");
        builder.AddBlock(list);
      }
      xml::NodeId li = doc->CreateElement("li");
      EmitInline(doc, li, line.substr(2));
      doc->AppendChild(list, li);
      continue;
    }
    flush_list();
    if (!paragraph.empty()) paragraph += ' ';
    paragraph += line;
  }
  flush_code();
  flush_paragraph();
  return builder.Finish();
}

}  // namespace netmark::convert
