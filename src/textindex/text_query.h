// Search-expression parsing and evaluation for content/context search keys.
//
// Grammar (whitespace separated, AND semantics across clauses):
//   clause  := word | "quoted phrase" | word*   (trailing * = prefix match)
// Example: `shuttle "technology gap" eng*`

#ifndef NETMARK_TEXTINDEX_TEXT_QUERY_H_
#define NETMARK_TEXTINDEX_TEXT_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "textindex/inverted_index.h"

namespace netmark::textindex {

/// One conjunct of a text query.
struct QueryClause {
  enum class Kind { kTerm, kPhrase, kPrefix };
  Kind kind = Kind::kTerm;
  /// kTerm/kPrefix: one entry; kPhrase: the words in order.
  std::vector<std::string> words;
};

/// A parsed search key: conjunction of clauses.
struct TextQuery {
  std::vector<QueryClause> clauses;
  bool empty() const { return clauses.empty(); }
};

/// \brief Parses a search key. Never fails on plain text — quoting errors
/// degrade to term clauses (NETMARK is permissive with user queries) — but
/// an all-whitespace key yields an empty query.
TextQuery ParseTextQuery(std::string_view key);

/// \brief Evaluates a query over an index: intersection of clause results.
std::vector<DocKey> Evaluate(const TextQuery& query, const InvertedIndex& index);

/// \brief True when `text` satisfies the query — used to post-filter results
/// from capability-limited federated sources that only support coarser
/// matching than the query requires (paper §2.1.5 "augmentation").
bool Matches(const TextQuery& query, std::string_view text);

}  // namespace netmark::textindex

#endif  // NETMARK_TEXTINDEX_TEXT_QUERY_H_
