// Slotted page layout.
//
// A page is a fixed 8 KiB block:
//
//   [ header (8 bytes) | slot directory (4 bytes/slot, grows up) ...
//                                     ... record data (grows down) ]
//
// Slots are never reused for a *different* record while the page lives, so a
// (page, slot) pair — a RowId — is a stable physical address. Deleted slots
// become tombstones.

#ifndef NETMARK_STORAGE_PAGE_H_
#define NETMARK_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace netmark::storage {

inline constexpr size_t kPageSize = 8192;

/// Offset value marking a deleted slot.
inline constexpr uint16_t kTombstoneOffset = 0xFFFF;

/// \brief View/manipulator over one 8 KiB page buffer.
///
/// The Page does not own the buffer; the Pager does.
class Page {
 public:
  explicit Page(uint8_t* data) : data_(data) {}

  /// Zeroes the header of a fresh page.
  void Init() {
    set_slot_count(0);
    set_free_end(kPageSize);
  }

  uint16_t slot_count() const { return Read16(0); }
  /// Offset of the lowest used data byte (records occupy [free_end, kPageSize)).
  uint16_t free_end() const { return Read16(2); }

  /// Bytes available for one more record (including its 4-byte slot).
  size_t FreeSpace() const {
    size_t dir_end = kHeaderSize + static_cast<size_t>(slot_count()) * kSlotSize;
    size_t fe = free_end();
    return fe > dir_end ? fe - dir_end : 0;
  }

  /// Can a record of `len` bytes be appended (new slot required)?
  bool CanInsert(size_t len) const { return FreeSpace() >= len + kSlotSize; }

  /// Appends a record, returning its slot index. Caller must CanInsert first.
  uint16_t Insert(std::string_view record) {
    uint16_t slot = slot_count();
    uint16_t new_end = static_cast<uint16_t>(free_end() - record.size());
    std::memcpy(data_ + new_end, record.data(), record.size());
    SetSlot(slot, new_end, static_cast<uint16_t>(record.size()));
    set_free_end(new_end);
    set_slot_count(static_cast<uint16_t>(slot + 1));
    return slot;
  }

  /// Record bytes at a slot; empty view for tombstones/bad slots.
  std::string_view Get(uint16_t slot) const {
    if (slot >= slot_count()) return {};
    auto [off, len] = GetSlot(slot);
    if (off == kTombstoneOffset) return {};
    return std::string_view(reinterpret_cast<const char*>(data_ + off), len);
  }

  bool IsLive(uint16_t slot) const {
    if (slot >= slot_count()) return false;
    return GetSlot(slot).first != kTombstoneOffset;
  }

  /// Tombstones a slot. Space is not reclaimed (no compaction), which keeps
  /// all other slots' offsets — and thus RowIds — stable.
  void Delete(uint16_t slot) { SetSlot(slot, kTombstoneOffset, 0); }

  /// Overwrites a record in place; only legal when the new record is no
  /// longer than the old one (caller checks).
  void UpdateInPlace(uint16_t slot, std::string_view record) {
    auto [off, len] = GetSlot(slot);
    std::memcpy(data_ + off, record.data(), record.size());
    SetSlot(slot, off, static_cast<uint16_t>(record.size()));
  }

  /// Length of the record stored at a slot (0 for tombstones).
  uint16_t RecordLength(uint16_t slot) const { return GetSlot(slot).second; }

  uint8_t* raw() { return data_; }
  const uint8_t* raw() const { return data_; }

  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kSlotSize = 4;
  /// Largest record that fits in an empty page.
  static constexpr size_t kMaxInlineRecord = kPageSize - kHeaderSize - kSlotSize;

 private:
  uint16_t Read16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data_ + off, 2);
    return v;
  }
  void Write16(size_t off, uint16_t v) { std::memcpy(data_ + off, &v, 2); }

  void set_slot_count(uint16_t v) { Write16(0, v); }
  void set_free_end(uint16_t v) { Write16(2, v); }

  std::pair<uint16_t, uint16_t> GetSlot(uint16_t slot) const {
    size_t base = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
    return {Read16(base), Read16(base + 2)};
  }
  void SetSlot(uint16_t slot, uint16_t off, uint16_t len) {
    size_t base = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
    Write16(base, off);
    Write16(base + 2, len);
  }

  uint8_t* data_;
};

}  // namespace netmark::storage

#endif  // NETMARK_STORAGE_PAGE_H_
