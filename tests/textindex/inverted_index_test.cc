#include "textindex/inverted_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace netmark::textindex {
namespace {

TEST(InvertedIndexTest, SingleTermLookup) {
  InvertedIndex ix;
  ix.Add(1, "the shuttle engine");
  ix.Add(2, "budget report");
  auto hits = ix.LookupTerm("shuttle");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_TRUE(ix.LookupTerm("absent").empty());
}

TEST(InvertedIndexTest, LookupIsCaseInsensitive) {
  InvertedIndex ix;
  ix.Add(1, "Technology Gap");
  EXPECT_EQ(ix.LookupTerm("TECHNOLOGY").size(), 1u);
  EXPECT_EQ(ix.LookupTerm("gap").size(), 1u);
}

TEST(InvertedIndexTest, ResultsSortedByKey) {
  InvertedIndex ix;
  ix.Add(30, "common word");
  ix.Add(10, "common word");
  ix.Add(20, "common word");
  auto hits = ix.LookupTerm("common");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 10u);
  EXPECT_EQ(hits[1], 20u);
  EXPECT_EQ(hits[2], 30u);
}

TEST(InvertedIndexTest, MatchAllIntersects) {
  InvertedIndex ix;
  ix.Add(1, "shuttle engine anomaly");
  ix.Add(2, "shuttle budget");
  ix.Add(3, "engine budget anomaly");
  auto hits = ix.MatchAll({"shuttle", "anomaly"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
  EXPECT_TRUE(ix.MatchAll({"shuttle", "nonexistent"}).empty());
  EXPECT_TRUE(ix.MatchAll({}).empty());
}

TEST(InvertedIndexTest, MatchAnyUnions) {
  InvertedIndex ix;
  ix.Add(1, "alpha");
  ix.Add(2, "beta");
  ix.Add(3, "alpha beta");
  auto hits = ix.MatchAny({"alpha", "beta"});
  EXPECT_EQ(hits.size(), 3u);
}

TEST(InvertedIndexTest, PhraseRequiresAdjacency) {
  InvertedIndex ix;
  ix.Add(1, "the technology gap is shrinking");
  ix.Add(2, "technology closes the gap");
  auto hits = ix.MatchPhrase({"technology", "gap"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(InvertedIndexTest, PhraseAcrossThreeWords) {
  InvertedIndex ix;
  ix.Add(1, "integrated budget performance document");
  ix.Add(2, "budget performance review of integrated document");
  auto hits = ix.MatchPhrase({"budget", "performance", "document"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(InvertedIndexTest, RepeatedWordPhrase) {
  InvertedIndex ix;
  ix.Add(1, "very very important");
  ix.Add(2, "very important");
  auto hits = ix.MatchPhrase({"very", "very"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(InvertedIndexTest, PrefixMatching) {
  InvertedIndex ix;
  ix.Add(1, "engine");
  ix.Add(2, "engineering");
  ix.Add(3, "england");
  auto hits = ix.MatchPrefix("engin");
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(ix.MatchPrefix("eng").size(), 3u);
  EXPECT_TRUE(ix.MatchPrefix("xyz").empty());
}

TEST(InvertedIndexTest, RemoveErasesContribution) {
  InvertedIndex ix;
  ix.Add(1, "shared unique1");
  ix.Add(2, "shared unique2");
  ix.Remove(1, "shared unique1");
  EXPECT_TRUE(ix.LookupTerm("unique1").empty());
  auto hits = ix.LookupTerm("shared");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 2u);
  // Term whose postings became empty is dropped entirely.
  EXPECT_EQ(ix.num_terms(), 2u);  // "shared", "unique2"
}

TEST(InvertedIndexTest, CountsTrackAddsAndRemoves) {
  InvertedIndex ix;
  EXPECT_EQ(ix.num_terms(), 0u);
  ix.Add(1, "a b c");
  EXPECT_EQ(ix.num_terms(), 3u);
  EXPECT_EQ(ix.num_postings(), 3u);
  ix.Add(2, "a");
  EXPECT_EQ(ix.num_postings(), 4u);
  ix.Remove(2, "a");
  EXPECT_EQ(ix.num_postings(), 3u);
}

TEST(InvertedIndexTest, AddRemoveStressMatchesNaiveSearch) {
  netmark::Rng rng(77);
  std::vector<std::string> vocab = {"alpha", "beta", "gamma", "delta", "epsilon",
                                    "zeta",  "eta",  "theta", "iota",  "kappa"};
  std::map<DocKey, std::string> docs;
  InvertedIndex ix;
  for (DocKey k = 1; k <= 200; ++k) {
    std::string text;
    size_t len = 3 + rng.Uniform(15);
    for (size_t i = 0; i < len; ++i) {
      text += vocab[rng.Uniform(vocab.size())];
      text += ' ';
    }
    docs[k] = text;
    ix.Add(k, text);
  }
  // Remove a random third.
  for (DocKey k = 1; k <= 200; k += 3) {
    ix.Remove(k, docs[k]);
    docs.erase(k);
  }
  for (const std::string& word : vocab) {
    std::vector<DocKey> expected;
    for (const auto& [k, text] : docs) {
      // Whole-term match (substring would falsely hit "eta" inside "beta").
      auto terms = TokenizeTerms(text);
      if (std::find(terms.begin(), terms.end(), word) != terms.end()) {
        expected.push_back(k);
      }
    }
    EXPECT_EQ(ix.LookupTerm(word), expected) << word;
  }
}

}  // namespace
}  // namespace netmark::textindex
