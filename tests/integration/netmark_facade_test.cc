#include "core/netmark.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"

namespace netmark {
namespace {

class FacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("facade");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    NetmarkOptions options;
    options.data_dir = dir_->Sub("data").string();
    auto nm = Netmark::Open(options);
    ASSERT_TRUE(nm.ok());
    nm_ = std::move(*nm);
  }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Netmark> nm_;
};

TEST_F(FacadeTest, OpenRequiresDataDir) {
  EXPECT_TRUE(Netmark::Open(NetmarkOptions{}).status().IsInvalidArgument());
}

TEST_F(FacadeTest, IngestQueryLifecycle) {
  auto id = nm_->IngestContent("memo.txt", "OVERVIEW\nengine status green\n");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1);

  auto hits = nm_->Query("context=Overview");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].heading, "OVERVIEW");

  auto xml_out = nm_->QueryToXml("content=engine");
  ASSERT_TRUE(xml_out.ok());
  EXPECT_NE(xml_out->find("memo.txt"), std::string::npos);

  auto docs = nm_->ListDocuments();
  ASSERT_TRUE(docs.ok());
  ASSERT_EQ(docs->size(), 1u);

  auto doc_xml = nm_->GetDocumentXml(*id);
  ASSERT_TRUE(doc_xml.ok());
  EXPECT_NE(doc_xml->find("engine status green"), std::string::npos);

  ASSERT_TRUE(nm_->DeleteDocument(*id).ok());
  EXPECT_TRUE(nm_->GetDocumentXml(*id).status().IsNotFound());
}

TEST_F(FacadeTest, IngestFileFromDisk) {
  auto path = dir_->Sub("on_disk.md");
  ASSERT_TRUE(WriteFile(path, "# Heading\n\ndisk-borne body\n").ok());
  auto id = nm_->IngestFile(path);
  ASSERT_TRUE(id.ok());
  auto hits = nm_->Query("context=Heading");
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
  EXPECT_TRUE(nm_->IngestFile(dir_->Sub("missing.txt")).status().IsIOError());
}

TEST_F(FacadeTest, ContextSearchIsCaseInsensitive) {
  ASSERT_TRUE(nm_->IngestContent("r.txt", "TECHNOLOGY GAP\nshrinking\n").ok());
  EXPECT_EQ(nm_->Query("context=technology+gap")->size(), 1u);
  EXPECT_EQ(nm_->Query("context=Technology+Gap")->size(), 1u);
}

TEST_F(FacadeTest, QueryAndTransform) {
  ASSERT_TRUE(nm_->IngestContent("a.txt", "ALPHA\none\n").ok());
  ASSERT_TRUE(nm_->IngestContent("b.txt", "ALPHA\ntwo\n").ok());
  auto out = nm_->QueryAndTransform(
      "context=Alpha",
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<n><xsl:value-of select=\"results/@count\"/></n>"
      "</xsl:template></xsl:stylesheet>");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "<n>2</n>");
  // Broken stylesheet surfaces the parse error.
  EXPECT_FALSE(nm_->QueryAndTransform("context=Alpha", "<bogus/>").ok());
}

TEST_F(FacadeTest, SelfSourceAndDatabank) {
  ASSERT_TRUE(nm_->IngestContent("x.txt", "SECTION\nfederated words\n").ok());
  ASSERT_TRUE(nm_->RegisterSelfAsSource("me").ok());
  ASSERT_TRUE(nm_->DefineDatabank("solo", {"me"}).ok());
  auto hits = nm_->QueryDatabank("solo", "context=Section");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ((*hits)[0].source, "me");
}

TEST_F(FacadeTest, ServerLifecycle) {
  EXPECT_EQ(nm_->server_port(), 0);
  ASSERT_TRUE(nm_->StartServer().ok());
  EXPECT_GT(nm_->server_port(), 0);
  EXPECT_TRUE(nm_->StartServer().IsAlreadyExists());
  nm_->StopServer();
  EXPECT_EQ(nm_->server_port(), 0);
  // Restartable.
  ASSERT_TRUE(nm_->StartServer().ok());
  nm_->StopServer();
}

TEST_F(FacadeTest, DaemonRequiresStart) {
  EXPECT_TRUE(nm_->ProcessDropFolderOnce().status().IsInvalidArgument());
}

}  // namespace
}  // namespace netmark
