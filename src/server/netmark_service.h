// The NETMARK HTTP service: XDB queries, WebDAV-lite document authoring, and
// XSLT result composition behind "simple HTTP requests" (paper §2.1.2-2.1.3).
//
// Routes:
//   GET      /xdb?Context=..&Content=..[&xslt=name][&databank=name][&limit=n]
//   PUT      /docs/<file-name>          ingest a document (any format)
//   GET      /docs/<doc-id>             reconstructed document XML
//   DELETE   /docs/<doc-id>
//   GET      /docs                      document listing (XML)
//   PROPFIND /docs                      WebDAV-style multistatus listing
//   GET      /status                    store statistics

#ifndef NETMARK_SERVER_NETMARK_SERVICE_H_
#define NETMARK_SERVER_NETMARK_SERVICE_H_

#include <map>
#include <memory>
#include <string>

#include "convert/registry.h"
#include "federation/router.h"
#include "query/compose.h"
#include "query/executor.h"
#include "server/http_message.h"
#include "xmlstore/xml_store.h"
#include "xslt/stylesheet.h"

namespace netmark::server {

/// \brief Request router for one NETMARK instance.
class NetmarkService {
 public:
  explicit NetmarkService(xmlstore::XmlStore* store)
      : store_(store),
        executor_(store),
        converters_(convert::ConverterRegistry::Default()) {}

  /// Optional: enable `databank=` fan-out queries.
  void set_router(federation::Router* router) { router_ = router; }

  /// Registers a stylesheet for `xslt=` result composition.
  netmark::Status RegisterStylesheet(const std::string& name,
                                     std::string_view stylesheet_text);

  /// Dispatches one request.
  HttpResponse Handle(const HttpRequest& request);

  xmlstore::XmlStore* store() { return store_; }

 private:
  HttpResponse HandleXdb(const HttpRequest& request);
  HttpResponse HandlePutDocument(const HttpRequest& request,
                                 const std::string& file_name);
  HttpResponse HandleGetDocument(int64_t doc_id);
  HttpResponse HandleDeleteDocument(int64_t doc_id);
  HttpResponse HandleListDocuments(bool webdav);
  HttpResponse HandleStatus();

  /// Applies the named stylesheet (if any) and serializes.
  netmark::Result<std::string> RenderResults(const xml::Document& results,
                                             const std::string& xslt_name);

  xmlstore::XmlStore* store_;
  query::QueryExecutor executor_;
  convert::ConverterRegistry converters_;
  federation::Router* router_ = nullptr;
  std::map<std::string, xslt::Stylesheet> stylesheets_;
};

/// \brief Builds a `<results>` document from a federated query (mirror of
/// query::ComposeResults for the databank path). Alongside the `<result>`
/// elements it emits a `<sources>` annotation reporting each source's
/// outcome (ok / timed-out / failed / breaker-open), attempts and latency —
/// the partial-result contract: callers always learn what they did NOT get.
xml::Document ComposeFederatedResults(const query::XdbQuery& query,
                                      const federation::FederatedResult& result);

}  // namespace netmark::server

#endif  // NETMARK_SERVER_NETMARK_SERVICE_H_
