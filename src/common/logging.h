// Minimal leveled logger. Thread-safe; writes to stderr by default.
//
// Two front ends:
//   NETMARK_LOG(Warning)  << "free text";            // stream style
//   NETMARK_SLOG(Warning, "breaker_transition")      // structured style:
//       .Field("source", name).Field("cooldown_ms", 5000);
//
// Every line carries an ISO-8601 UTC timestamp. The structured form emits
// `event=<name> key=value ...` with values quoted when they contain spaces,
// so the slow-query log (and any other machine-read line) stays one
// grep/awk-able record. The level is initialized from the NETMARK_LOG_LEVEL
// environment variable (debug|info|warning|error|off) and can be overridden
// programmatically (e.g. from an INI [server] log_level key).

#ifndef NETMARK_COMMON_LOGGING_H_
#define NETMARK_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>

namespace netmark {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// \brief Parses "debug"/"info"/"warning"/"warn"/"error"/"off" (case
/// insensitive); returns `fallback` for anything else (including null).
LogLevel ParseLogLevel(const char* text, LogLevel fallback);

/// \brief Process-wide logging configuration.
class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  /// \brief Emits one formatted line
  /// ("2026-08-06T12:00:00.000Z [LEVEL] file:line message").
  void Log(LogLevel level, const char* file, int line, const std::string& message);

  /// Redirects output (tests); null restores stderr. The sink receives the
  /// fully formatted line without the trailing newline.
  void SetSink(std::function<void(const std::string&)> sink);

 private:
  Logger();
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarning)};
  std::mutex mu_;
  std::function<void(const std::string&)> sink_;  // guarded by mu_
};

namespace internal {

/// Stream-collecting helper behind the NETMARK_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Instance().Log(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// key=value collecting helper behind the NETMARK_SLOG macro. Values with
/// spaces, quotes or '=' are double-quoted (inner quotes escaped).
class StructuredMessage {
 public:
  StructuredMessage(LogLevel level, const char* file, int line,
                    std::string_view event);
  ~StructuredMessage();

  StructuredMessage& Field(std::string_view key, std::string_view value);
  StructuredMessage& Field(std::string_view key, const char* value) {
    return Field(key, std::string_view(value));
  }
  StructuredMessage& Field(std::string_view key, const std::string& value) {
    return Field(key, std::string_view(value));
  }
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  StructuredMessage& Field(std::string_view key, T value) {
    std::ostringstream os;
    os << value;
    return Field(key, std::string_view(os.str()));
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::string line_text_;
};

}  // namespace internal

/// \brief Formats `micros`-resolution wall time as ISO-8601 UTC
/// ("2026-08-06T12:00:00.000Z", millisecond precision).
std::string FormatIso8601Millis(int64_t wall_micros);

}  // namespace netmark

#define NETMARK_LOG(severity)                                                   \
  if (static_cast<int>(::netmark::LogLevel::k##severity) <                      \
      static_cast<int>(::netmark::Logger::Instance().level()))                  \
    ;                                                                           \
  else                                                                          \
    ::netmark::internal::LogMessage(::netmark::LogLevel::k##severity, __FILE__, \
                                    __LINE__)                                   \
        .stream()

#define NETMARK_SLOG(severity, event)                                       \
  if (static_cast<int>(::netmark::LogLevel::k##severity) <                   \
      static_cast<int>(::netmark::Logger::Instance().level()))               \
    ;                                                                        \
  else                                                                       \
    ::netmark::internal::StructuredMessage(                                  \
        ::netmark::LogLevel::k##severity, __FILE__, __LINE__, (event))

#endif  // NETMARK_COMMON_LOGGING_H_
