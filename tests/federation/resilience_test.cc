// Deterministic chaos suite for the federation resilience layer: deadlines,
// retries with backoff, circuit breakers, concurrent fan-out, and
// partial-result semantics (ISSUE 2 acceptance scenario lives here).

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "federation/fault_injection.h"
#include "federation/remote_source.h"
#include "federation/router.h"
#include "query/xdb_query.h"

namespace netmark::federation {
namespace {

/// Canned `<results>` body with the given docids (every hit matches
/// content=alpha).
std::string ResultsBody(std::vector<int> docids) {
  std::string out = "<results>";
  for (int id : docids) {
    out += "<result doc=\"d" + std::to_string(id) + ".xml\" docid=\"" +
           std::to_string(id) +
           "\"><context>Sec</context><content>alpha text</content></result>";
  }
  out += "</results>";
  return out;
}

/// Always-healthy transport returning a canned body; records request paths.
class StaticTransport : public HttpTransport {
 public:
  explicit StaticTransport(std::string body) : body_(std::move(body)) {}
  using HttpTransport::Get;
  netmark::Result<std::string> Get(const std::string& path_and_query,
                                   const CallContext& ctx) override {
    (void)ctx;
    std::lock_guard<std::mutex> lock(mu_);
    paths_.push_back(path_and_query);
    return body_;
  }
  std::vector<std::string> paths() const {
    std::lock_guard<std::mutex> lock(mu_);
    return paths_;
  }

 private:
  std::string body_;
  mutable std::mutex mu_;
  std::vector<std::string> paths_;
};

/// A source that never answers: it blocks until the caller's deadline (or an
/// explicit Release()), like a remote that accepted the connection and went
/// silent. Deadline-aware so worker joins always terminate.
class HangingSource : public Source {
 public:
  explicit HangingSource(std::string name) : name_(std::move(name)) {}
  ~HangingSource() override { Release(); }
  const std::string& name() const override { return name_; }
  Capabilities capabilities() const override { return Capabilities::Full(); }
  using Source::Execute;
  netmark::Result<std::vector<FederatedHit>> Execute(
      const query::XdbQuery& query, const CallContext& ctx) override {
    (void)query;
    std::unique_lock<std::mutex> lock(mu_);
    ++calls_;
    if (ctx.bounded()) {
      std::chrono::steady_clock::time_point deadline{
          std::chrono::microseconds(ctx.deadline_micros)};
      cv_.wait_until(lock, deadline, [&] { return released_; });
    } else {
      cv_.wait(lock, [&] { return released_; });
    }
    if (released_) return std::vector<FederatedHit>{};
    return netmark::Status::DeadlineExceeded("hung source gave up at deadline");
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }
  int calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
  int calls_ = 0;
};

/// Router options for fast deterministic tests: no real backoff sleeps, no
/// breaker unless a test opts in.
RouterOptions FastOptions() {
  RouterOptions options;
  options.backoff = netmark::BackoffPolicy::None();
  options.sleep_ms = [](int64_t) {};
  options.breaker = CircuitBreakerConfig::Disabled();
  return options;
}

std::shared_ptr<RemoteSource> HealthySource(const std::string& name,
                                            std::vector<int> docids) {
  return std::make_shared<RemoteSource>(
      name, std::make_unique<StaticTransport>(ResultsBody(std::move(docids))));
}

query::XdbQuery ContentQuery(int64_t timeout_ms = 0) {
  query::XdbQuery q;
  q.content = "alpha";
  q.timeout_ms = timeout_ms;
  return q;
}

const SourceOutcome* FindOutcome(const FederatedResult& result,
                                 const std::string& name) {
  for (const SourceOutcome& s : result.sources) {
    if (s.source == name) return &s;
  }
  return nullptr;
}

// The ISSUE acceptance scenario: {1 healthy, 1 hung, 1 returning 500s}.
// The query must complete within the configured deadline — not the hang
// duration — return the healthy source's hits, and annotate the other two.
TEST(ResilienceTest, AcceptanceHealthyHungAndFailingSources) {
  RouterOptions options = FastOptions();
  options.max_retries = 2;
  Router router(options);

  auto hung = std::make_shared<HangingSource>("hung");
  auto broken = std::make_shared<RemoteSource>(
      "flaky500", [] {
        FaultSpec spec;
        spec.http_500_rate = 1.0;
        return std::make_unique<FaultInjectingTransport>(
            std::make_unique<StaticTransport>(ResultsBody({9})), spec, 77);
      }());
  ASSERT_TRUE(router.RegisterSource(HealthySource("healthy", {1, 2})).ok());
  ASSERT_TRUE(router.RegisterSource(hung).ok());
  ASSERT_TRUE(router.RegisterSource(broken).ok());
  ASSERT_TRUE(
      router.DefineDatabank("bank", {"healthy", "hung", "flaky500"}).ok());

  const int64_t start = netmark::MonotonicMicros();
  auto result = router.QueryFederated("bank", ContentQuery(/*timeout_ms=*/250));
  const int64_t elapsed_ms = (netmark::MonotonicMicros() - start) / 1000;
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Bounded by the deadline, not the hang: well under the 30s default and
  // within a small multiple of the 250ms budget.
  EXPECT_LT(elapsed_ms, 5000);

  // Only the healthy source's hits arrive, in doc_id order.
  ASSERT_EQ(result->hits.size(), 2u);
  EXPECT_EQ(result->hits[0].source, "healthy");
  EXPECT_EQ(result->hits[0].doc_id, 1);
  EXPECT_EQ(result->hits[1].doc_id, 2);
  EXPECT_FALSE(result->complete());

  ASSERT_EQ(result->sources.size(), 3u);
  // Outcomes come back in databank declaration order.
  EXPECT_EQ(result->sources[0].source, "healthy");
  EXPECT_EQ(result->sources[1].source, "hung");
  EXPECT_EQ(result->sources[2].source, "flaky500");

  const SourceOutcome* ok = FindOutcome(*result, "healthy");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->state, SourceState::kOk);
  EXPECT_EQ(ok->attempts, 1);
  EXPECT_EQ(ok->hits, 2u);

  const SourceOutcome* timed_out = FindOutcome(*result, "hung");
  ASSERT_NE(timed_out, nullptr);
  EXPECT_EQ(timed_out->state, SourceState::kTimedOut);
  EXPECT_GE(timed_out->attempts, 1);
  EXPECT_EQ(timed_out->hits, 0u);

  const SourceOutcome* failed = FindOutcome(*result, "flaky500");
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->state, SourceState::kFailed);
  EXPECT_EQ(failed->attempts, options.max_retries + 1);
  EXPECT_NE(failed->error.find("HTTP 500"), std::string::npos);

  EXPECT_EQ(result->stats.sources_queried, 3u);
  EXPECT_EQ(result->stats.source_timeouts, 1u);
  EXPECT_EQ(result->stats.source_failures, 1u);
  EXPECT_EQ(result->stats.retries, 2u);
  EXPECT_EQ(result->stats.final_hits, 2u);
}

TEST(ResilienceTest, FlakySourceRecoversWithinRetryBudget) {
  RouterOptions options = FastOptions();
  options.max_retries = 2;
  Router router(options);

  FaultSpec spec;
  spec.fail_first_n = 2;  // refuse twice, then answer
  auto transport = std::make_unique<FaultInjectingTransport>(
      std::make_unique<StaticTransport>(ResultsBody({4})), spec, 5);
  FaultInjectingTransport* raw = transport.get();
  ASSERT_TRUE(router
                  .RegisterSource(std::make_shared<RemoteSource>(
                      "flaky", std::move(transport)))
                  .ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"flaky"}).ok());

  auto result = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->complete());
  ASSERT_EQ(result->sources.size(), 1u);
  EXPECT_EQ(result->sources[0].state, SourceState::kOk);
  EXPECT_EQ(result->sources[0].attempts, 3);
  EXPECT_EQ(result->stats.retries, 2u);
  ASSERT_EQ(result->hits.size(), 1u);
  EXPECT_EQ(result->hits[0].doc_id, 4);
  EXPECT_EQ(raw->calls(), 3);
}

TEST(ResilienceTest, MalformedBodyIsNeverRetried) {
  // A garbage payload *arrived* — retrying will not fix it.
  RouterOptions options = FastOptions();
  options.max_retries = 5;
  Router router(options);

  FaultSpec spec;
  spec.malformed_rate = 1.0;
  auto transport = std::make_unique<FaultInjectingTransport>(
      std::make_unique<StaticTransport>(ResultsBody({1})), spec, 5);
  FaultInjectingTransport* raw = transport.get();
  ASSERT_TRUE(router
                  .RegisterSource(std::make_shared<RemoteSource>(
                      "garbled", std::move(transport)))
                  .ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"garbled"}).ok());

  auto result = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->sources.size(), 1u);
  EXPECT_EQ(result->sources[0].state, SourceState::kFailed);
  EXPECT_EQ(result->sources[0].attempts, 1) << "parse errors must not retry";
  EXPECT_EQ(raw->calls(), 1);
  EXPECT_EQ(result->stats.retries, 0u);
}

TEST(ResilienceTest, TruncatedBodyIsRetriedUntilBudgetExhausted) {
  RouterOptions options = FastOptions();
  options.max_retries = 2;
  Router router(options);

  FaultSpec spec;
  spec.truncate_rate = 1.0;
  auto transport = std::make_unique<FaultInjectingTransport>(
      std::make_unique<StaticTransport>(ResultsBody({1})), spec, 5);
  FaultInjectingTransport* raw = transport.get();
  ASSERT_TRUE(router
                  .RegisterSource(std::make_shared<RemoteSource>(
                      "cutoff", std::move(transport)))
                  .ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"cutoff"}).ok());

  auto result = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->sources.size(), 1u);
  EXPECT_EQ(result->sources[0].state, SourceState::kFailed);
  EXPECT_EQ(result->sources[0].attempts, 3);
  EXPECT_NE(result->sources[0].error.find("truncated"), std::string::npos);
  EXPECT_EQ(raw->calls(), 3);
}

TEST(ResilienceTest, BreakerOpensThenHalfOpenProbeRecovers) {
  RouterOptions options = FastOptions();
  options.max_retries = 0;  // one attempt per query: failures count cleanly
  Router router(options);

  CircuitBreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown_ms = 30;
  SourcePolicy policy;
  policy.breaker = breaker;

  auto transport = std::make_unique<FaultInjectingTransport>(
      std::make_unique<StaticTransport>(ResultsBody({1})), FaultSpec::Healthy(),
      5);
  FaultInjectingTransport* raw = transport.get();
  ASSERT_TRUE(router
                  .RegisterSource(
                      std::make_shared<RemoteSource>("srv", std::move(transport)),
                      policy)
                  .ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"srv"}).ok());

  // Two failing queries trip the breaker.
  raw->FailNext(2);
  for (int i = 0; i < 2; ++i) {
    auto r = router.QueryFederated("bank", ContentQuery(1000));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->sources[0].state, SourceState::kFailed);
  }
  EXPECT_EQ(raw->calls(), 2);
  EXPECT_EQ(router.GetBreaker("srv")->state(netmark::MonotonicMicros()),
            CircuitBreaker::State::kOpen);

  // While open, queries are skipped without touching the transport.
  auto skipped = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(skipped.ok());
  EXPECT_EQ(skipped->sources[0].state, SourceState::kBreakerOpen);
  EXPECT_EQ(skipped->sources[0].attempts, 0);
  EXPECT_EQ(skipped->stats.breaker_skips, 1u);
  EXPECT_EQ(raw->calls(), 2) << "open breaker must not issue calls";

  // After the cooldown the half-open probe goes through; the (now healthy)
  // source answers and the breaker closes again.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  auto probe = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->sources[0].state, SourceState::kOk);
  EXPECT_EQ(raw->calls(), 3);
  EXPECT_EQ(router.GetBreaker("srv")->state(netmark::MonotonicMicros()),
            CircuitBreaker::State::kClosed);

  auto after = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->complete());
}

TEST(ResilienceTest, AllSourcesDownYieldsEmptyAnnotatedResult) {
  RouterOptions options = FastOptions();
  options.max_retries = 1;
  Router router(options);

  FaultSpec refused;
  refused.error_rate = 1.0;
  FaultSpec truncated;
  truncated.truncate_rate = 1.0;
  ASSERT_TRUE(router
                  .RegisterSource(std::make_shared<RemoteSource>(
                      "down-a", std::make_unique<FaultInjectingTransport>(
                                    std::make_unique<StaticTransport>(
                                        ResultsBody({1})),
                                    refused, 11)))
                  .ok());
  ASSERT_TRUE(router
                  .RegisterSource(std::make_shared<RemoteSource>(
                      "down-b", std::make_unique<FaultInjectingTransport>(
                                    std::make_unique<StaticTransport>(
                                        ResultsBody({2})),
                                    truncated, 12)))
                  .ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"down-a", "down-b"}).ok());

  // The databank keeps serving: an ok() result with no hits and a full
  // outcome report, never an error.
  auto result = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->hits.empty());
  EXPECT_FALSE(result->complete());
  ASSERT_EQ(result->sources.size(), 2u);
  for (const SourceOutcome& s : result->sources) {
    EXPECT_EQ(s.state, SourceState::kFailed);
    EXPECT_EQ(s.attempts, 2);
    EXPECT_FALSE(s.error.empty());
  }
  EXPECT_EQ(result->stats.source_failures, 2u);
}

TEST(ResilienceTest, SingleHungSourceTimesOutTheQuery) {
  Router router(FastOptions());
  auto hung = std::make_shared<HangingSource>("hung");
  ASSERT_TRUE(router.RegisterSource(hung).ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"hung"}).ok());

  const int64_t start = netmark::MonotonicMicros();
  auto result = router.QueryFederated("bank", ContentQuery(/*timeout_ms=*/100));
  const int64_t elapsed_ms = (netmark::MonotonicMicros() - start) / 1000;
  ASSERT_TRUE(result.ok());
  EXPECT_GE(elapsed_ms, 100);
  EXPECT_LT(elapsed_ms, 5000);
  EXPECT_TRUE(result->hits.empty());
  ASSERT_EQ(result->sources.size(), 1u);
  EXPECT_EQ(result->sources[0].state, SourceState::kTimedOut);
  EXPECT_FALSE(result->complete());
}

TEST(ResilienceTest, MergeOrderIsDeclarationOrderThenDocId) {
  Router router(FastOptions());
  // "second" is declared first; its docids arrive out of order.
  ASSERT_TRUE(router.RegisterSource(HealthySource("second", {5, 1})).ok());
  ASSERT_TRUE(router.RegisterSource(HealthySource("first", {3})).ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"second", "first"}).ok());

  auto result = router.QueryFederated("bank", ContentQuery(1000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 3u);
  EXPECT_EQ(result->hits[0].source, "second");
  EXPECT_EQ(result->hits[0].doc_id, 1);
  EXPECT_EQ(result->hits[1].source, "second");
  EXPECT_EQ(result->hits[1].doc_id, 5);
  EXPECT_EQ(result->hits[2].source, "first");
  EXPECT_EQ(result->hits[2].doc_id, 3);

  // Truncation is deterministic: sort first, then limit.
  query::XdbQuery limited = ContentQuery(1000);
  limited.limit = 2;
  auto truncated = router.QueryFederated("bank", limited);
  ASSERT_TRUE(truncated.ok());
  ASSERT_EQ(truncated->hits.size(), 2u);
  EXPECT_EQ(truncated->hits[0].doc_id, 1);
  EXPECT_EQ(truncated->hits[1].doc_id, 5);
  EXPECT_EQ(truncated->stats.final_hits, 2u);
}

TEST(ResilienceTest, DeadlinePropagatesToRemoteSources) {
  Router router(FastOptions());
  auto transport = std::make_unique<StaticTransport>(ResultsBody({1}));
  StaticTransport* raw = transport.get();
  ASSERT_TRUE(router
                  .RegisterSource(std::make_shared<RemoteSource>(
                      "remote", std::move(transport)))
                  .ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"remote"}).ok());

  auto result = router.QueryFederated("bank", ContentQuery(/*timeout_ms=*/5000));
  ASSERT_TRUE(result.ok());
  auto paths = raw->paths();
  ASSERT_EQ(paths.size(), 1u);
  // The remote sees the *remaining* budget so it can bound itself too.
  EXPECT_NE(paths[0].find("timeout="), std::string::npos) << paths[0];
}

TEST(ResilienceTest, ConcurrentQueriesKeepIndependentStats) {
  // Regression for the stats race: per-query stats must reflect that query
  // alone even when many queries run concurrently (the old mutable shared
  // Stats was clobbered by whichever query started last).
  Router router(FastOptions());
  ASSERT_TRUE(router.RegisterSource(HealthySource("a", {1, 2})).ok());
  ASSERT_TRUE(router.RegisterSource(HealthySource("b", {3, 4})).ok());
  ASSERT_TRUE(router.DefineDatabank("bank", {"a", "b"}).ok());

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 5;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&router, &bad] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto result = router.QueryFederated("bank", ContentQuery(2000));
        if (!result.ok() || result->stats.sources_queried != 2 ||
            result->stats.raw_hits != 4 || result->stats.final_hits != 4 ||
            result->hits.size() != 4 || !result->complete()) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  // Cumulative counters saw every query.
  EXPECT_EQ(router.stats().sources_queried,
            static_cast<size_t>(kThreads * kQueriesPerThread * 2));
  EXPECT_EQ(router.stats().final_hits,
            static_cast<size_t>(kThreads * kQueriesPerThread * 4));
}

/// Builds the chaos fleet for the seeded sweep: three fault-injected sources
/// with mixed failure modes, serialized fan-out so the fault dice rolls are a
/// pure function of the seed.
std::unique_ptr<Router> MakeChaosRouter(uint64_t seed) {
  RouterOptions options = FastOptions();
  options.max_parallel_sources = 1;  // deterministic call order
  options.max_retries = 2;
  options.rng_seed = seed;
  auto router = std::make_unique<Router>(options);

  struct SourceSpec {
    const char* name;
    FaultSpec faults;
  };
  FaultSpec mixed;
  mixed.error_rate = 0.3;
  mixed.truncate_rate = 0.2;
  FaultSpec fivehundreds;
  fivehundreds.http_500_rate = 0.5;
  FaultSpec garbage;
  garbage.malformed_rate = 0.25;
  const SourceSpec specs[] = {
      {"mixed", mixed}, {"fivehundreds", fivehundreds}, {"garbage", garbage}};
  std::vector<std::string> names;
  for (size_t i = 0; i < 3; ++i) {
    auto transport = std::make_unique<FaultInjectingTransport>(
        std::make_unique<StaticTransport>(
            ResultsBody({static_cast<int>(i) + 1})),
        specs[i].faults, seed ^ (i + 1));
    EXPECT_TRUE(router
                    ->RegisterSource(std::make_shared<RemoteSource>(
                        specs[i].name, std::move(transport)))
                    .ok());
    names.push_back(specs[i].name);
  }
  EXPECT_TRUE(router->DefineDatabank("chaos", names).ok());
  return router;
}

TEST(ResilienceTest, ChaosSweepIsDeterministicPerSeed) {
  // CI runs this test under many NETMARK_CHAOS_SEED values (see ci.yml); each
  // run replays the same fault schedule twice and the outcomes must agree
  // bit-for-bit. Whatever the faults do, every query returns ok() with a full
  // outcome report.
  uint64_t seed = 1234;
  if (const char* env = std::getenv("NETMARK_CHAOS_SEED")) {
    seed = static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  auto run = [&](Router* router) {
    std::vector<std::string> trace;
    for (int i = 0; i < 12; ++i) {
      auto result = router->QueryFederated("chaos", ContentQuery(2000));
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (!result.ok()) continue;
      EXPECT_EQ(result->sources.size(), 3u);
      for (const SourceOutcome& s : result->sources) {
        trace.push_back(s.source + ":" +
                        std::string(SourceStateToString(s.state)) + ":" +
                        std::to_string(s.attempts) + ":" +
                        std::to_string(s.hits));
      }
    }
    return trace;
  };
  auto router_a = MakeChaosRouter(seed);
  auto router_b = MakeChaosRouter(seed);
  std::vector<std::string> trace_a = run(router_a.get());
  std::vector<std::string> trace_b = run(router_b.get());
  EXPECT_EQ(trace_a, trace_b)
      << "same seed must replay the same outcome sequence";
}

}  // namespace
}  // namespace netmark::federation
