#include "server/daemon.h"

#include "common/clock.h"
#include "common/logging.h"
#include "common/temp_dir.h"

namespace netmark::server {

namespace fs = std::filesystem;

netmark::Status IngestionDaemon::Start() {
  if (running_.load()) return netmark::Status::AlreadyExists("daemon already running");
  std::error_code ec;
  fs::create_directories(options_.drop_dir, ec);
  if (ec) {
    return netmark::Status::IOError("cannot create drop dir: " + ec.message());
  }
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return netmark::Status::OK();
}

void IngestionDaemon::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void IngestionDaemon::Loop() {
  while (running_.load()) {
    auto processed = ProcessOnce();
    if (!processed.ok()) {
      NETMARK_LOG(Warning) << "daemon sweep failed: " << processed.status();
    }
    std::this_thread::sleep_for(options_.poll_interval);
  }
}

netmark::Result<int> IngestionDaemon::ProcessOnce() {
  std::lock_guard<std::mutex> lock(sweep_mu_);
  std::error_code ec;
  if (!fs::exists(options_.drop_dir, ec)) return 0;
  int count = 0;
  std::vector<fs::path> pending;
  for (const auto& entry : fs::directory_iterator(options_.drop_dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.empty() || name[0] == '.') continue;  // editors' temp files
    pending.push_back(entry.path());
  }
  std::sort(pending.begin(), pending.end());  // deterministic order
  for (const fs::path& path : pending) {
    netmark::Status st = IngestFile(path);
    fs::path target_dir =
        options_.drop_dir / (st.ok() ? "processed" : "failed");
    if (st.ok()) {
      ++count;
      files_ingested_.fetch_add(1);
    } else {
      files_failed_.fetch_add(1);
      NETMARK_LOG(Warning) << "failed to ingest " << path.string() << ": " << st;
    }
    if (options_.keep_processed) {
      fs::create_directories(target_dir, ec);
      fs::rename(path, target_dir / path.filename(), ec);
      if (ec) fs::remove(path, ec);
    } else {
      fs::remove(path, ec);
    }
  }
  return count;
}

netmark::Status IngestionDaemon::IngestFile(const fs::path& path) {
  NETMARK_ASSIGN_OR_RETURN(std::string content, netmark::ReadFile(path));
  NETMARK_ASSIGN_OR_RETURN(xml::Document doc,
                           converters_->Convert(path.filename().string(), content));
  xmlstore::DocumentInfo info;
  info.file_name = path.filename().string();
  info.file_date = netmark::WallSeconds();
  info.file_size = static_cast<int64_t>(content.size());
  return store_->InsertDocument(doc, info).status();
}

}  // namespace netmark::server
