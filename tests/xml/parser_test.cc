#include "xml/parser.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"

namespace netmark::xml {
namespace {

TEST(ParserTest, ParsesSimpleElementTree) {
  auto doc = ParseXml("<a><b>text</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  NodeId a = doc->DocumentElement();
  ASSERT_NE(a, kInvalidNode);
  EXPECT_EQ(doc->name(a), "a");
  auto kids = doc->ChildElements(a);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(doc->name(kids[0]), "b");
  EXPECT_EQ(doc->TextContent(kids[0]), "text");
  EXPECT_EQ(doc->name(kids[1]), "c");
  EXPECT_EQ(doc->first_child(kids[1]), kInvalidNode);
}

TEST(ParserTest, ParsesAttributes) {
  auto doc = ParseXml(R"(<e a="1" b='two' c = "3 &amp; 4"/>)");
  ASSERT_TRUE(doc.ok());
  NodeId e = doc->DocumentElement();
  EXPECT_EQ(doc->GetAttribute(e, "a"), "1");
  EXPECT_EQ(doc->GetAttribute(e, "b"), "two");
  EXPECT_EQ(doc->GetAttribute(e, "c"), "3 & 4");
}

TEST(ParserTest, DecodesEntitiesInText) {
  auto doc = ParseXml("<e>a &lt; b &amp;&amp; c &gt; d &#65;&#x42;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->TextContent(doc->DocumentElement()), "a < b && c > d AB");
}

TEST(ParserTest, KeepsCDataVerbatim) {
  auto doc = ParseXml("<e><![CDATA[<raw> & stuff]]></e>");
  ASSERT_TRUE(doc.ok());
  NodeId e = doc->DocumentElement();
  NodeId cdata = doc->first_child(e);
  ASSERT_NE(cdata, kInvalidNode);
  EXPECT_EQ(doc->kind(cdata), NodeKind::kCData);
  EXPECT_EQ(doc->data(cdata), "<raw> & stuff");
}

TEST(ParserTest, DropsCommentsByDefaultKeepsOnRequest) {
  auto plain = ParseXml("<e><!-- note --><x/></e>");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->Children(plain->DocumentElement()).size(), 1u);

  ParseOptions opts;
  opts.keep_comments = true;
  auto kept = Parse("<e><!-- note --><x/></e>", opts);
  ASSERT_TRUE(kept.ok());
  auto kids = kept->Children(kept->DocumentElement());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kept->kind(kids[0]), NodeKind::kComment);
  EXPECT_EQ(kept->data(kids[0]), " note ");
}

TEST(ParserTest, SkipsXmlDeclarationAndDoctype) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE html [ <!ENTITY x \"y\"> ]>\n"
      "<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->name(doc->DocumentElement()), "root");
  // Only the root element should be a child of the document node.
  EXPECT_EQ(doc->Children(doc->root()).size(), 1u);
}

TEST(ParserTest, KeepsNonXmlProcessingInstructions) {
  auto doc = ParseXml("<?xml-stylesheet href=\"s.xsl\"?><root/>");
  ASSERT_TRUE(doc.ok());
  auto kids = doc->Children(doc->root());
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(doc->kind(kids[0]), NodeKind::kProcessingInstruction);
  EXPECT_EQ(doc->name(kids[0]), "xml-stylesheet");
  EXPECT_EQ(doc->data(kids[0]), "href=\"s.xsl\"");
}

TEST(ParserTest, StrictModeRejectsImbalance) {
  EXPECT_TRUE(ParseXml("<a><b></a>").status().IsParseError());
  EXPECT_TRUE(ParseXml("<a>").status().IsParseError());
  EXPECT_TRUE(ParseXml("</a>").status().IsParseError());
  EXPECT_TRUE(ParseXml("<a><!-- unterminated ->").status().IsParseError());
}

TEST(ParserTest, WhitespaceOnlyTextDroppedByDefault) {
  auto doc = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Children(doc->DocumentElement()).size(), 2u);

  ParseOptions opts;
  opts.keep_whitespace_text = true;
  auto kept = Parse("<a>\n  <b/>\n</a>", opts);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->Children(kept->DocumentElement()).size(), 3u);
}

TEST(ParserTest, AdjacentTextMerges) {
  auto doc = ParseXml("<a>one &amp; two</a>");
  ASSERT_TRUE(doc.ok());
  auto kids = doc->Children(doc->DocumentElement());
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(doc->data(kids[0]), "one & two");
}

// --- HTML tolerance ---

TEST(ParserHtmlTest, FoldsTagCaseAndClosesVoids) {
  auto doc = ParseHtml("<DIV><BR><IMG src=x.png></DIV>");
  ASSERT_TRUE(doc.ok());
  NodeId div = doc->DocumentElement();
  EXPECT_EQ(doc->name(div), "div");
  auto kids = doc->ChildElements(div);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(doc->name(kids[0]), "br");
  EXPECT_EQ(doc->name(kids[1]), "img");
  EXPECT_EQ(doc->GetAttribute(kids[1], "src"), "x.png");
}

TEST(ParserHtmlTest, ImplicitlyClosesParagraphsAndListItems) {
  auto doc = ParseHtml("<body><p>one<p>two<ul><li>a<li>b</ul></body>");
  ASSERT_TRUE(doc.ok());
  NodeId body = doc->DocumentElement();
  auto kids = doc->ChildElements(body);
  ASSERT_EQ(kids.size(), 3u);  // p, p, ul
  EXPECT_EQ(doc->TextContent(kids[0]), "one");
  EXPECT_EQ(doc->TextContent(kids[1]), "two");
  auto items = doc->ChildElements(kids[2]);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(doc->TextContent(items[0]), "a");
  EXPECT_EQ(doc->TextContent(items[1]), "b");
}

TEST(ParserHtmlTest, IgnoresStrayCloseTagsAndUnclosedElements) {
  auto doc = ParseHtml("<div></span><b>text</div>");
  ASSERT_TRUE(doc.ok());
  NodeId div = doc->DocumentElement();
  EXPECT_EQ(doc->name(div), "div");
  EXPECT_EQ(doc->TextContent(div), "text");
}

TEST(ParserHtmlTest, ScriptContentIsRawText) {
  auto doc = ParseHtml("<html><script>if (a < b && c > d) { x(); }</script></html>");
  ASSERT_TRUE(doc.ok());
  NodeId script = doc->FirstChildElement(doc->DocumentElement(), "script");
  ASSERT_NE(script, kInvalidNode);
  EXPECT_EQ(doc->TextContent(script), "if (a < b && c > d) { x(); }");
}

TEST(ParserHtmlTest, UnquotedAttributeValues) {
  auto doc = ParseHtml("<a href=index.html class=nav>x</a>");
  ASSERT_TRUE(doc.ok());
  NodeId a = doc->DocumentElement();
  EXPECT_EQ(doc->GetAttribute(a, "href"), "index.html");
  EXPECT_EQ(doc->GetAttribute(a, "class"), "nav");
}

TEST(ParserHtmlTest, TableCellsImplicitlyClose) {
  auto doc = ParseHtml("<table><tr><td>1<td>2<tr><td>3</table>");
  ASSERT_TRUE(doc.ok());
  NodeId table = doc->DocumentElement();
  auto rows = doc->ChildElements(table);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(doc->ChildElements(rows[0]).size(), 2u);
  EXPECT_EQ(doc->ChildElements(rows[1]).size(), 1u);
}

// Parse → serialize → parse must be a fixpoint for well-formed XML.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParseSerializeParseIsFixpoint) {
  auto doc1 = ParseXml(GetParam());
  ASSERT_TRUE(doc1.ok()) << doc1.status().ToString();
  std::string text1 = Serialize(*doc1);
  auto doc2 = ParseXml(text1);
  ASSERT_TRUE(doc2.ok()) << doc2.status().ToString();
  EXPECT_TRUE(Document::SubtreeEquals(*doc1, doc1->root(), *doc2, doc2->root()))
      << "serialized form: " << text1;
  EXPECT_EQ(text1, Serialize(*doc2));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTripTest,
    ::testing::Values(
        "<a/>",
        "<a>text</a>",
        "<a><b/><c>x</c><b>y</b></a>",
        R"(<e k="v" empty=""/>)",
        "<e>&lt;escaped&gt; &amp; more</e>",
        "<r><![CDATA[raw <stuff> here]]></r>",
        "<doc><title>T</title><sec><h1>H</h1><p>body text</p></sec></doc>",
        R"(<attr q="it&quot;s"/>)",
        "<deep><l1><l2><l3><l4>x</l4></l3></l2></l1></deep>",
        "<mixed>pre<b>bold</b>post</mixed>"));

}  // namespace
}  // namespace netmark::xml
