#include "federation/augment.h"

#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::federation {

std::vector<DomSection> ExtractSections(const xml::Document& doc,
                                        const xml::NodeTypeConfig& node_types) {
  std::vector<DomSection> out;
  for (xml::NodeId node : doc.Descendants(doc.root())) {
    if (doc.kind(node) != xml::NodeKind::kElement) continue;
    if (node_types.Classify(doc, node) != xml::NetmarkNodeType::kContext) continue;
    DomSection section;
    section.heading = doc.TextContent(node);
    for (xml::NodeId sib = doc.next_sibling(node); sib != xml::kInvalidNode;
         sib = doc.next_sibling(sib)) {
      if (doc.kind(sib) == xml::NodeKind::kElement &&
          node_types.Classify(doc, sib) == xml::NetmarkNodeType::kContext) {
        break;
      }
      std::string text = doc.kind(sib) == xml::NodeKind::kText
                             ? doc.data(sib)
                             : doc.TextContent(sib);
      if (!text.empty()) {
        if (!section.text.empty()) section.text += ' ';
        section.text += text;
      }
      section.markup += xml::Serialize(doc, sib);
    }
    out.push_back(std::move(section));
  }
  return out;
}

netmark::Result<std::vector<DomSection>> ExtractSectionsFromMarkup(
    std::string_view markup, const xml::NodeTypeConfig& node_types) {
  auto doc = xml::ParseXml(markup);
  if (!doc.ok()) {
    NETMARK_ASSIGN_OR_RETURN(xml::Document html, xml::ParseHtml(markup));
    return ExtractSections(html, node_types);
  }
  return ExtractSections(*doc, node_types);
}

}  // namespace netmark::federation
