#include "storage/schema.h"

#include <cstring>

#include "common/string_util.h"

namespace netmark::storage {

netmark::Result<size_t> TableSchema::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return netmark::Status::NotFound("no column '" + std::string(column) + "' in table " +
                                   name_);
}

netmark::Status TableSchema::Validate(const Row& row) const {
  if (row.size() != columns_.size()) {
    return netmark::Status::InvalidArgument(
        netmark::StringPrintf("row arity %zu does not match schema %s (%zu columns)",
                              row.size(), name_.c_str(), columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    const ColumnSchema& c = columns_[i];
    if (v.is_null()) {
      if (!c.nullable) {
        return netmark::Status::InvalidArgument("NULL in non-nullable column " + c.name);
      }
      continue;
    }
    if (v.type() != c.type) {
      return netmark::Status::InvalidArgument(
          "type mismatch in column " + c.name + ": expected " +
          std::string(ValueTypeToString(c.type)) + ", got " +
          std::string(ValueTypeToString(v.type())));
    }
  }
  return netmark::Status::OK();
}

std::string TableSchema::Encode() const {
  std::string out = name_;
  out += '(';
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out += ',';
    out += columns_[i].name;
    out += ':';
    out += ValueTypeToString(columns_[i].type);
    if (columns_[i].nullable) out += '?';
  }
  out += ')';
  return out;
}

netmark::Result<TableSchema> TableSchema::Decode(std::string_view text) {
  size_t open = text.find('(');
  if (open == std::string_view::npos || text.back() != ')') {
    return netmark::Status::ParseError("bad schema encoding: " + std::string(text));
  }
  std::string name(netmark::TrimView(text.substr(0, open)));
  std::string_view cols = text.substr(open + 1, text.size() - open - 2);
  std::vector<ColumnSchema> columns;
  if (!netmark::TrimView(cols).empty()) {
    for (const std::string& part : netmark::Split(cols, ',')) {
      size_t colon = part.find(':');
      if (colon == std::string::npos) {
        return netmark::Status::ParseError("bad column encoding: " + part);
      }
      ColumnSchema c;
      c.name = netmark::Trim(part.substr(0, colon));
      std::string type_str = netmark::Trim(part.substr(colon + 1));
      c.nullable = !type_str.empty() && type_str.back() == '?';
      if (c.nullable) type_str.pop_back();
      NETMARK_ASSIGN_OR_RETURN(c.type, ValueTypeFromString(type_str));
      columns.push_back(std::move(c));
    }
  }
  return TableSchema(std::move(name), std::move(columns));
}

namespace {

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    *out += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  *out += static_cast<char>(v);
}

netmark::Result<uint64_t> ReadVarint(std::string_view bytes, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < bytes.size()) {
    uint8_t b = static_cast<uint8_t>(bytes[*pos]);
    ++*pos;
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) break;
  }
  return netmark::Status::Corruption("truncated varint in row encoding");
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace

std::string EncodeRow(const Row& row) {
  std::string out;
  AppendVarint(&out, row.size());
  for (const Value& v : row) {
    out += static_cast<char>(v.type());
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt64:
        AppendVarint(&out, ZigZag(v.AsInt()));
        break;
      case ValueType::kDouble: {
        double d = v.AsReal();
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        out.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
        break;
      }
      case ValueType::kString:
        AppendVarint(&out, v.AsStr().size());
        out += v.AsStr();
        break;
    }
  }
  return out;
}

netmark::Result<Row> DecodeRow(std::string_view bytes) {
  size_t pos = 0;
  NETMARK_ASSIGN_OR_RETURN(uint64_t n, ReadVarint(bytes, &pos));
  Row row;
  row.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (pos >= bytes.size()) return netmark::Status::Corruption("truncated row");
    auto type = static_cast<ValueType>(bytes[pos]);
    ++pos;
    switch (type) {
      case ValueType::kNull:
        row.push_back(Value::Null());
        break;
      case ValueType::kInt64: {
        NETMARK_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint(bytes, &pos));
        row.push_back(Value::Int(UnZigZag(raw)));
        break;
      }
      case ValueType::kDouble: {
        if (pos + sizeof(uint64_t) > bytes.size()) {
          return netmark::Status::Corruption("truncated double in row");
        }
        uint64_t bits;
        std::memcpy(&bits, bytes.data() + pos, sizeof(bits));
        pos += sizeof(bits);
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row.push_back(Value::Real(d));
        break;
      }
      case ValueType::kString: {
        NETMARK_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(bytes, &pos));
        if (pos + len > bytes.size()) {
          return netmark::Status::Corruption("truncated string in row");
        }
        row.push_back(Value::Str(std::string(bytes.substr(pos, len))));
        pos += len;
        break;
      }
      default:
        return netmark::Status::Corruption("unknown value tag in row");
    }
  }
  if (pos != bytes.size()) {
    return netmark::Status::Corruption("trailing bytes after row");
  }
  return row;
}

}  // namespace netmark::storage
