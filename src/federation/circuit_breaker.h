// Per-source circuit breaker: a dead source is skipped cheaply instead of
// being re-probed (and re-timed-out) on every databank query.
//
// Classic three-state machine:
//
//   closed ──(failure_threshold consecutive failures)──> open
//   open   ──(cooldown elapses)──> half-open
//   half-open ──(probe succeeds half_open_successes times)──> closed
//   half-open ──(probe fails)──> open (cooldown restarts)
//
// Time is passed in explicitly (MonotonicMicros in production, a fake
// counter in tests) so the state machine is fully deterministic.

#ifndef NETMARK_FEDERATION_CIRCUIT_BREAKER_H_
#define NETMARK_FEDERATION_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>
#include <string_view>

namespace netmark::federation {

/// Tunable thresholds of one breaker.
struct CircuitBreakerConfig {
  /// Consecutive failures (across queries) that trip the breaker open.
  int failure_threshold = 5;
  /// How long an open breaker rejects before admitting a half-open probe.
  int64_t cooldown_ms = 10000;
  /// Probe successes required in half-open before closing again.
  int half_open_successes = 1;

  /// A breaker that never opens (failure_threshold <= 0 disables it).
  static CircuitBreakerConfig Disabled() { return {0, 0, 1}; }
  bool enabled() const { return failure_threshold > 0; }
};

/// \brief Thread-safe closed/open/half-open breaker with injected time.
///
/// Every committed state transition is logged at Warning with the source
/// name and cooldown (`event=breaker_transition source=... from=... to=...`)
/// — breakers silently isolating a source were invisible in operation
/// before; now each flip leaves a record and bumps `transitions()`.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config, std::string name = "")
      : config_(config), name_(std::move(name)) {}

  /// Source name used in transition logs (set by the router at registration).
  void set_name(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    name_ = name;
  }

  /// True if a call may proceed at `now_micros`. An open breaker whose
  /// cooldown has elapsed transitions to half-open and admits exactly one
  /// in-flight probe at a time.
  bool Allow(int64_t now_micros);

  /// Reports the result of a call previously admitted by Allow().
  void RecordSuccess(int64_t now_micros);
  void RecordFailure(int64_t now_micros);

  /// Current state, advancing open -> half-open if the cooldown elapsed.
  State state(int64_t now_micros) const;

  int consecutive_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return consecutive_failures_;
  }

  /// Committed state transitions since construction.
  uint64_t transitions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return transitions_;
  }

 private:
  State StateLocked(int64_t now_micros) const;
  /// Commits state_ = to, logging and counting the transition.
  void TransitionLocked(State to);

  const CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  std::string name_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  int64_t opened_at_micros_ = 0;
  uint64_t transitions_ = 0;
};

/// \brief Human-readable state name ("closed", "open", "half-open").
std::string_view CircuitStateToString(CircuitBreaker::State state);

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_CIRCUIT_BREAKER_H_
