#include "common/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/temp_dir.h"

namespace netmark {

namespace {

Status ErrnoStatus(const std::string& path, const char* op, int err) {
  std::string msg =
      StringPrintf("%s: %s failed: %s", path.c_str(), op, std::strerror(err));
  if (err == ENOSPC || err == EDQUOT) return Status::CapacityExceeded(std::move(msg));
  return Status::IOError(std::move(msg));
}

class PosixFile : public File {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t len, void* buf) override {
    auto* out = static_cast<uint8_t*>(buf);
    size_t done = 0;
    while (done < len) {
      ssize_t n = ::pread(fd_, out + done, len - done,
                          static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(path_, "pread", errno);
      }
      if (n == 0) {
        return Status::IOError(StringPrintf(
            "%s: short read: got %zu of %zu bytes at offset %llu", path_.c_str(),
            done, len, static_cast<unsigned long long>(offset)));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const void* buf, size_t len) override {
    const auto* in = static_cast<const uint8_t*>(buf);
    size_t done = 0;
    while (done < len) {
      ssize_t n = ::pwrite(fd_, in + done, len - done,
                           static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(path_, "pwrite", errno);
      }
      done += static_cast<size_t>(n);  // short write: keep going
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus(path_, "fdatasync", errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    int rc;
    do {
      rc = ::ftruncate(fd_, static_cast<off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return ErrnoStatus(path_, "ftruncate", errno);
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) return ErrnoStatus(path_, "lseek", errno);
    return static_cast<uint64_t>(end);
  }

  const std::string& path() const override { return path_; }

 private:
  std::string path_;
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override {
    int flags = O_RDWR | O_CLOEXEC;
    if (create) flags |= O_CREAT;
    int fd;
    do {
      fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return ErrnoStatus(path, "open", errno);
    return std::unique_ptr<File>(new PosixFile(path, fd));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    return netmark::ReadFile(path);
  }

  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override {
    return netmark::WriteFileAtomic(std::filesystem::path(path), contents);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Result<FaultSpec> FaultSpec::Parse(std::string_view text) {
  FaultSpec spec;
  std::string_view kind = text;
  size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    kind = text.substr(0, colon);
    std::string nth_text(text.substr(colon + 1));
    char* end = nullptr;
    unsigned long long n = std::strtoull(nth_text.c_str(), &end, 10);
    if (end == nth_text.c_str() || *end != '\0' || n == 0) {
      return Status::InvalidArgument("bad fault op index: " + nth_text);
    }
    spec.nth = n;
  }
  if (kind == "read_eio") {
    spec.kind = Kind::kReadEio;
  } else if (kind == "write_eio") {
    spec.kind = Kind::kWriteEio;
    spec.sticky = true;
  } else if (kind == "write_enospc") {
    spec.kind = Kind::kWriteEnospc;
    spec.sticky = true;
  } else if (kind == "write_short") {
    spec.kind = Kind::kWriteShort;
  } else if (kind == "write_torn") {
    spec.kind = Kind::kWriteTorn;
  } else if (kind == "fsync_fail") {
    spec.kind = Kind::kFsyncFail;
    spec.sticky = true;
  } else {
    return Status::InvalidArgument("unknown fault kind: " + std::string(kind));
  }
  return spec;
}

namespace internal {
struct FaultCounters {
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> syncs{0};
  std::atomic<uint64_t> faults{0};
};
}  // namespace internal

namespace {

bool IsWriteFault(FaultSpec::Kind k) {
  return k == FaultSpec::Kind::kWriteEio || k == FaultSpec::Kind::kWriteEnospc ||
         k == FaultSpec::Kind::kWriteShort || k == FaultSpec::Kind::kWriteTorn;
}

/// Whether the fault fires on the operation that advanced its category
/// counter to `count` (counts are 1-based).
bool Fires(const FaultSpec& spec, uint64_t count) {
  return spec.sticky ? count >= spec.nth : count == spec.nth;
}

class FaultFile : public File {
 public:
  FaultFile(std::unique_ptr<File> base, FaultSpec spec,
            std::shared_ptr<internal::FaultCounters> counters)
      : base_(std::move(base)), spec_(spec), counters_(std::move(counters)) {}

  Status Read(uint64_t offset, size_t len, void* buf) override {
    uint64_t n = counters_->reads.fetch_add(1) + 1;
    if (spec_.kind == FaultSpec::Kind::kReadEio && Fires(spec_, n)) {
      counters_->faults.fetch_add(1);
      return Status::IOError(StringPrintf("%s: pread failed: %s (injected)",
                                          path().c_str(), std::strerror(EIO)));
    }
    return base_->Read(offset, len, buf);
  }

  Status Write(uint64_t offset, const void* buf, size_t len) override {
    uint64_t n = counters_->writes.fetch_add(1) + 1;
    if (IsWriteFault(spec_.kind) && Fires(spec_, n)) {
      counters_->faults.fetch_add(1);
      switch (spec_.kind) {
        case FaultSpec::Kind::kWriteEio:
          return Status::IOError(StringPrintf("%s: pwrite failed: %s (injected)",
                                              path().c_str(),
                                              std::strerror(EIO)));
        case FaultSpec::Kind::kWriteEnospc:
          return Status::CapacityExceeded(
              StringPrintf("%s: pwrite failed: %s (injected)", path().c_str(),
                           std::strerror(ENOSPC)));
        case FaultSpec::Kind::kWriteShort: {
          // The kernel accepted only part of the write; a correct caller (or
          // a correct File impl) completes the rest. Both halves go through,
          // so this fault is invisible unless someone stops retrying.
          size_t part = len / 2 == 0 ? len : len / 2;
          NETMARK_RETURN_NOT_OK(base_->Write(offset, buf, part));
          if (part < len) {
            NETMARK_RETURN_NOT_OK(
                base_->Write(offset + part,
                             static_cast<const uint8_t*>(buf) + part,
                             len - part));
          }
          return Status::OK();
        }
        case FaultSpec::Kind::kWriteTorn: {
          // Power loss mid-write: persist a garbled prefix, then die without
          // running any cleanup. Recovery must detect the tear.
          size_t part = len / 2 == 0 ? len : len / 2;
          std::vector<uint8_t> garbled(static_cast<const uint8_t*>(buf),
                                       static_cast<const uint8_t*>(buf) + part);
          for (size_t i = 0; i < garbled.size(); i += 37) garbled[i] ^= 0xA5;
          (void)base_->Write(offset, garbled.data(), garbled.size());
          (void)base_->Sync();
          ::_exit(41);
        }
        default:
          break;
      }
    }
    return base_->Write(offset, buf, len);
  }

  Status Sync() override {
    uint64_t n = counters_->syncs.fetch_add(1) + 1;
    if (spec_.kind == FaultSpec::Kind::kFsyncFail && Fires(spec_, n)) {
      counters_->faults.fetch_add(1);
      return Status::IOError(StringPrintf("%s: fdatasync failed: %s (injected)",
                                          path().c_str(), std::strerror(EIO)));
    }
    return base_->Sync();
  }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Result<uint64_t> Size() override { return base_->Size(); }
  const std::string& path() const override { return base_->path(); }

 private:
  std::unique_ptr<File> base_;
  FaultSpec spec_;
  std::shared_ptr<internal::FaultCounters> counters_;
};

}  // namespace

FaultInjectingEnv::FaultInjectingEnv(FaultSpec spec, Env* base)
    : spec_(spec),
      base_(base != nullptr ? base : Env::Default()),
      counters_(std::make_shared<internal::FaultCounters>()) {}

Result<std::unique_ptr<File>> FaultInjectingEnv::OpenFile(
    const std::string& path, bool create) {
  NETMARK_ASSIGN_OR_RETURN(std::unique_ptr<File> base,
                           base_->OpenFile(path, create));
  return std::unique_ptr<File>(
      new FaultFile(std::move(base), spec_, counters_));
}

Result<std::string> FaultInjectingEnv::ReadFileToString(
    const std::string& path) {
  uint64_t n = counters_->reads.fetch_add(1) + 1;
  if (spec_.kind == FaultSpec::Kind::kReadEio && Fires(spec_, n)) {
    counters_->faults.fetch_add(1);
    return Status::IOError(StringPrintf("%s: read failed: %s (injected)",
                                        path.c_str(), std::strerror(EIO)));
  }
  return base_->ReadFileToString(path);
}

Status FaultInjectingEnv::WriteFileAtomic(const std::string& path,
                                          std::string_view contents) {
  uint64_t n = counters_->writes.fetch_add(1) + 1;
  if ((spec_.kind == FaultSpec::Kind::kWriteEio ||
       spec_.kind == FaultSpec::Kind::kWriteEnospc) &&
      Fires(spec_, n)) {
    counters_->faults.fetch_add(1);
    int err = spec_.kind == FaultSpec::Kind::kWriteEio ? EIO : ENOSPC;
    return ErrnoStatus(path, "write", err);
  }
  return base_->WriteFileAtomic(path, contents);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

uint64_t FaultInjectingEnv::reads() const { return counters_->reads.load(); }
uint64_t FaultInjectingEnv::writes() const { return counters_->writes.load(); }
uint64_t FaultInjectingEnv::syncs() const { return counters_->syncs.load(); }
uint64_t FaultInjectingEnv::faults_injected() const {
  return counters_->faults.load();
}

std::unique_ptr<Env> MaybeFaultInjectingEnvFromEnvironment() {
  const char* text = std::getenv("NETMARK_DISK_FAULT");
  if (text == nullptr || text[0] == '\0') return nullptr;
  auto spec = FaultSpec::Parse(text);
  if (!spec.ok()) {
    NETMARK_LOG(Warning) << "ignoring NETMARK_DISK_FAULT '" << text
                         << "': " << spec.status().ToString();
    return nullptr;
  }
  return std::make_unique<FaultInjectingEnv>(*spec);
}

}  // namespace netmark
