#include "common/temp_dir.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>

namespace netmark {

Result<TempDir> TempDir::Make(const std::string& prefix) {
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) return Status::IOError("no temp directory: " + ec.message());
  std::random_device rd;
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::ostringstream name;
    name << prefix << '-' << std::hex << rd() << rd();
    std::filesystem::path candidate = base / name.str();
    if (std::filesystem::create_directory(candidate, ec)) {
      return TempDir(candidate);
    }
  }
  return Status::IOError("failed to create temp directory under " + base.string());
}

Status WriteFile(const std::filesystem::path& path, std::string_view content) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path.string());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IOError("write failed: " + path.string());
  return Status::OK();
}

Status WriteFileAtomic(const std::filesystem::path& path, std::string_view content) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
  }
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open for write: " + tmp.string() + ": " +
                           std::strerror(errno));
  }
  size_t off = 0;
  while (off < content.size()) {
    ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      ::close(fd);
      return Status::IOError("write failed: " + tmp.string() + ": " +
                             std::strerror(saved));
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IOError("fsync failed: " + tmp.string() + ": " +
                           std::strerror(saved));
  }
  ::close(fd);
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("rename " + tmp.string() + " -> " + path.string() +
                           ": " + ec.message());
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace netmark
