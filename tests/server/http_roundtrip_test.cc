// Live socket round trips: client <-> server over loopback, plus the full
// NETMARK service routes.

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/netmark_service.h"

namespace netmark::server {
namespace {

TEST(HttpServerTest, EchoRoundTrip) {
  HttpServer server([](const HttpRequest& req) {
    return HttpResponse::Ok("echo:" + req.method + ":" + req.path + ":" + req.body);
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  HttpClient client("127.0.0.1", server.port());
  auto resp = client.Put("/anywhere", "payload");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "echo:PUT:/anywhere:payload");
  EXPECT_EQ(server.requests_served(), 1u);
  server.Stop();
}

TEST(HttpServerTest, SequentialRequests) {
  HttpServer server([](const HttpRequest& req) {
    return HttpResponse::Ok(std::string(req.query));
  });
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    auto resp = client.Get("/q?n=" + std::to_string(i));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->body, "n=" + std::to_string(i));
  }
  EXPECT_EQ(server.requests_served(), 20u);
}

TEST(HttpServerTest, LargeBodyTransfers) {
  HttpServer server([](const HttpRequest& req) {
    return HttpResponse::Ok(std::to_string(req.body.size()));
  });
  ASSERT_TRUE(server.Start().ok());
  HttpClient client("127.0.0.1", server.port());
  std::string big(512 * 1024, 'x');
  auto resp = client.Put("/big", big);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, std::to_string(big.size()));
}

TEST(HttpClientTest, ConnectionRefusedIsUnavailable) {
  HttpClient client("127.0.0.1", 1);  // nothing listens on port 1
  EXPECT_TRUE(client.Get("/x").status().IsUnavailable());
}

class ServiceRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("service");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->str());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    service_ = std::make_unique<NetmarkService>(store_.get());
    server_ = std::make_unique<HttpServer>(
        [this](const HttpRequest& req) { return service_->Handle(req); });
    ASSERT_TRUE(server_->Start().ok());
    client_ = std::make_unique<HttpClient>("127.0.0.1", server_->port());
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
  std::unique_ptr<NetmarkService> service_;
  std::unique_ptr<HttpServer> server_;
  std::unique_ptr<HttpClient> client_;
};

TEST_F(ServiceRoundTripTest, PutQueryGetDeleteLifecycle) {
  // PUT a text document (drag-and-drop over WebDAV in the paper).
  auto put = client_->Put("/docs/report.txt",
                          "OVERVIEW\nThe shuttle engine passed review.\n\n"
                          "BUDGET\nCosts total 100 thousand.\n");
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put->status, 201);
  EXPECT_EQ(put->headers["Location"], "/docs/1");

  // Query it through the XDB endpoint.
  auto query = client_->Get("/xdb?context=Budget");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->status, 200);
  EXPECT_NE(query->body.find("<context>BUDGET</context>"), std::string::npos);
  EXPECT_NE(query->body.find("100 thousand"), std::string::npos);

  // Fetch the reconstructed document.
  auto get = client_->Get("/docs/1");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status, 200);
  EXPECT_NE(get->body.find("shuttle engine"), std::string::npos);

  // Delete, then the document is gone.
  auto del = client_->Delete("/docs/1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->status, 204);
  EXPECT_EQ(client_->Get("/docs/1")->status, 404);
}

TEST_F(ServiceRoundTripTest, ListingAndWebdavPropfind) {
  ASSERT_EQ(client_->Put("/docs/a.txt", "SECTION ONE\nalpha")->status, 201);
  ASSERT_EQ(client_->Put("/docs/b.txt", "SECTION TWO\nbeta")->status, 201);

  auto list = client_->Get("/docs");
  ASSERT_TRUE(list.ok());
  EXPECT_NE(list->body.find("name=\"a.txt\""), std::string::npos);
  EXPECT_NE(list->body.find("name=\"b.txt\""), std::string::npos);

  auto propfind = client_->Propfind("/docs");
  ASSERT_TRUE(propfind.ok());
  EXPECT_EQ(propfind->status, 207);
  EXPECT_NE(propfind->body.find("<D:multistatus"), std::string::npos);
  EXPECT_NE(propfind->body.find("<D:href>/docs/2</D:href>"), std::string::npos);
}

TEST_F(ServiceRoundTripTest, XsltComposedResponse) {
  ASSERT_TRUE(service_
                  ->RegisterStylesheet(
                      "headings",
                      "<xsl:stylesheet><xsl:template match=\"/\">"
                      "<report><xsl:for-each select=\"results/result\">"
                      "<h><xsl:value-of select=\"context\"/></h>"
                      "</xsl:for-each></report></xsl:template></xsl:stylesheet>")
                  .ok());
  ASSERT_EQ(client_->Put("/docs/r.txt", "BUDGET\nnumbers here")->status, 201);
  auto resp = client_->Get("/xdb?context=Budget&xslt=headings");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->body, "<report><h>BUDGET</h></report>");
  // Unknown stylesheet name is a server-side error.
  EXPECT_EQ(client_->Get("/xdb?context=Budget&xslt=ghost")->status, 500);
}

TEST_F(ServiceRoundTripTest, ErrorRoutes) {
  EXPECT_EQ(client_->Get("/nope")->status, 404);
  EXPECT_EQ(client_->Get("/xdb?")->status, 400);            // empty query
  EXPECT_EQ(client_->Get("/xdb?limit=abc")->status, 400);   // bad param
  EXPECT_EQ(client_->Get("/docs/notanumber")->status, 400);
  EXPECT_EQ(client_->Delete("/docs/99")->status, 404);
  EXPECT_EQ(client_->Put("/docs/", "x")->status, 400);
  // Databank query without a router configured.
  EXPECT_EQ(client_->Get("/xdb?content=x&databank=d")->status, 400);
}

TEST_F(ServiceRoundTripTest, PutToSameNameReplacesDocument) {
  ASSERT_EQ(client_->Put("/docs/live.txt", "VERSION ONE\noriginal words")->status,
            201);
  auto replace = client_->Put("/docs/live.txt", "VERSION TWO\nrevised words");
  ASSERT_TRUE(replace.ok());
  EXPECT_EQ(replace->status, 204);  // replaced, not created
  // Exactly one document remains, with the new content.
  auto list = client_->Get("/docs");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->body.find("live.txt"), list->body.rfind("live.txt"));
  auto hits = client_->Get("/xdb?content=revised");
  ASSERT_TRUE(hits.ok());
  EXPECT_NE(hits->body.find("live.txt"), std::string::npos);
  auto stale = client_->Get("/xdb?content=original");
  ASSERT_TRUE(stale.ok());
  EXPECT_NE(stale->body.find("count=\"0\""), std::string::npos);
}

TEST_F(ServiceRoundTripTest, XPathQueriesOverHttp) {
  ASSERT_EQ(client_
                ->Put("/docs/sheet.csv",
                      "task,amount\nalpha,100\nbeta,250\n", "text/csv")
                ->status,
            201);
  // //cell[@name='amount'] percent-encoded.
  auto resp = client_->Get("/xdb?xpath=//cell%5B%40name%3D%27amount%27%5D");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("<cell name=\"amount\">100</cell>"), std::string::npos);
  EXPECT_NE(resp->body.find("<cell name=\"amount\">250</cell>"), std::string::npos);
  // Bad XPath surfaces as a client error... (parse errors land in 500 from
  // the executor; accept either as long as it is an error).
  EXPECT_NE(client_->Get("/xdb?xpath=%5B%5B")->status, 200);
}

TEST_F(ServiceRoundTripTest, StatusEndpoint) {
  ASSERT_EQ(client_->Put("/docs/s.txt", "HEADING\nsome words here")->status, 201);
  auto resp = client_->Get("/status");
  ASSERT_TRUE(resp.ok());
  EXPECT_NE(resp->body.find("<documents>1</documents>"), std::string::npos);
}

}  // namespace
}  // namespace netmark::server
