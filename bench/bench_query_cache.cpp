// Result-cache benchmark: a Zipf-skewed repetitive XDB query mix through the
// executor, cache off vs cache on at a steady epoch, then cache on under
// epoch churn from a concurrent ingestion writer.
//
// The headline figure is the steady-epoch p50 speedup (the acceptance bar is
// >= 2x); the churn phase shows what invalidation-by-epoch costs when
// commits keep moving the key. Latencies are observed into
// netmark_query_cache_{off,on,churn}_micros histograms on the instance
// registry, so the regression gate can watch
// `--metric netmark_query_cache_on_micros`.
//
// Knobs: NETMARK_BENCH_QUERY_CACHE_SECONDS (per phase, default 1).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "query/executor.h"
#include "query/plan.h"
#include "query/result_cache.h"

namespace netmark {
namespace {

constexpr size_t kCorpusSize = 150;
constexpr size_t kQueryMixSize = 64;

/// Zipf-ranked query strings over the corpus's known headings and topic
/// vocabulary — the repetitive production traffic shape the cache targets.
std::vector<std::string> MakeQueryMix(uint64_t seed) {
  workload::CorpusGenerator gen(seed);
  const auto& headings = workload::CorpusGenerator::StandardHeadings();
  std::vector<std::string> mix;
  mix.reserve(kQueryMixSize);
  for (size_t i = 0; i < kQueryMixSize; ++i) {
    const std::string& heading = headings[i % headings.size()];
    std::string context;
    for (char c : heading) context += (c == ' ') ? '+' : c;
    switch (i % 3) {
      case 0:
        mix.push_back("context=" + context);
        break;
      case 1:
        mix.push_back("context=" + context + "&content=" + gen.RandomTopicTerm());
        break;
      default:
        mix.push_back("content=" + gen.RandomTopicTerm() + "&limit=10");
        break;
    }
  }
  return mix;
}

struct PhaseResult {
  uint64_t ops = 0;
  uint64_t failures = 0;
  double ops_per_sec = 0;
};

/// Closed loop on one thread: draw a Zipf rank, execute, observe latency.
PhaseResult RunPhase(const query::QueryExecutor& executor,
                     const std::vector<query::XdbQuery>& mix,
                     observability::Histogram* micros, double seconds,
                     uint64_t seed) {
  Rng rng(seed);
  PhaseResult result;
  int64_t t0 = MonotonicMicros();
  int64_t deadline = t0 + static_cast<int64_t>(seconds * 1e6);
  while (MonotonicMicros() < deadline) {
    const query::XdbQuery& q = mix[rng.Zipf(mix.size())];
    int64_t start = MonotonicMicros();
    auto hits = executor.Execute(q);
    micros->Observe(MonotonicMicros() - start);
    if (hits.ok()) {
      ++result.ops;
    } else {
      ++result.failures;
    }
  }
  double elapsed = static_cast<double>(MonotonicMicros() - t0) / 1e6;
  result.ops_per_sec =
      elapsed > 0 ? static_cast<double>(result.ops) / elapsed : 0;
  return result;
}

}  // namespace
}  // namespace netmark

int main() {
  using namespace netmark;

  double seconds = 1.0;
  if (const char* env = std::getenv("NETMARK_BENCH_QUERY_CACHE_SECONDS")) {
    double parsed = std::atof(env);
    if (parsed > 0) seconds = parsed;
  }

  bench::LoadedInstance inst = bench::MakeLoadedInstance(kCorpusSize);
  observability::MetricsRegistry* registry = inst.nm->metrics();
  observability::Histogram* off_micros =
      registry->GetHistogram("netmark_query_cache_off_micros");
  observability::Histogram* on_micros =
      registry->GetHistogram("netmark_query_cache_on_micros");
  observability::Histogram* churn_micros =
      registry->GetHistogram("netmark_query_cache_churn_micros");

  std::vector<query::XdbQuery> mix;
  for (const std::string& qs : MakeQueryMix(11)) {
    mix.push_back(bench::Unwrap(query::ParseXdbQuery(qs), "parse query"));
  }

  // The service-owned caches, driven directly through an executor (no HTTP
  // in the way — this measures the read path itself).
  query::QueryExecutor executor(inst.nm->store());
  query::QueryResultCache* cache = inst.nm->service()->result_cache();
  query::QueryPlanCache* plans = inst.nm->service()->plan_cache();
  executor.set_result_cache(cache);
  executor.set_plan_cache(plans);

  bench::ReportHeader("XDB result cache (epoch-keyed)",
                      "repetitive query URLs answer from cache; commits "
                      "invalidate by epoch, not by locking");
  bench::JsonLines jsonl("query_cache");
  char config[160];
  std::snprintf(config, sizeof(config),
                "corpus=%zu,mix=%zu,zipf=1.0,seconds=%g", kCorpusSize,
                kQueryMixSize, seconds);
  jsonl.EmitConfig(config);

  std::printf("%-18s %10s %12s %10s %8s\n", "phase", "ops", "ops/s",
              "hit_ratio", "errors");
  auto report = [&](const char* phase, const PhaseResult& r, double hit_ratio) {
    std::printf("%-18s %10llu %12.0f %9.1f%% %8llu\n", phase,
                static_cast<unsigned long long>(r.ops), r.ops_per_sec,
                hit_ratio * 100.0, static_cast<unsigned long long>(r.failures));
    jsonl.Emit(phase, hit_ratio, r.ops > 0 ? 1e9 / r.ops_per_sec : 0,
               r.ops_per_sec, "queries/s");
  };

  // Phase 1: cache off (the pre-cache read path), steady epoch.
  {
    query::ResultCacheOptions off;
    off.enabled = false;
    cache->Configure(off);
    PhaseResult r = RunPhase(executor, mix, off_micros, seconds, 1);
    report("cache_off", r, 0.0);
  }

  // Phase 2: cache on, steady epoch — the headline speedup.
  {
    cache->Configure(query::ResultCacheOptions{});
    PhaseResult r = RunPhase(executor, mix, on_micros, seconds, 2);
    report("cache_on", r, cache->snapshot().hit_ratio);
  }

  // Phase 3: cache on under epoch churn — a writer commits ~50 docs/s, each
  // commit moving every key to a new epoch.
  {
    cache->Configure(query::ResultCacheOptions{});
    std::atomic<bool> stop_writer{false};
    std::thread writer([&] {
      workload::CorpusGenerator gen(7);
      size_t i = 0;
      while (!stop_writer.load(std::memory_order_relaxed)) {
        auto doc = gen.MixedCorpus(1);
        bench::Check(inst.nm
                         ->IngestContent("bench-churn-" + std::to_string(i++) +
                                             ".txt",
                                         doc[0].content)
                         .status(),
                     "writer ingest");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    uint64_t hits_before = cache->snapshot().hits;
    uint64_t lookups_before =
        cache->snapshot().hits + cache->snapshot().misses;
    PhaseResult r = RunPhase(executor, mix, churn_micros, seconds, 3);
    stop_writer.store(true);
    writer.join();
    query::QueryResultCache::Snapshot snap = cache->snapshot();
    uint64_t lookups = snap.hits + snap.misses - lookups_before;
    double churn_ratio =
        lookups > 0
            ? static_cast<double>(snap.hits - hits_before) /
                  static_cast<double>(lookups)
            : 0;
    report("cache_on_churn", r, churn_ratio);
  }

  jsonl.EmitMetrics(*registry);

  observability::MetricsSnapshot snap = registry->Collect();
  double off_p50 = 0, on_p50 = 0;
  for (const auto& h : snap.histograms) {
    if (h.name == "netmark_query_cache_off_micros") off_p50 = h.p50;
    if (h.name == "netmark_query_cache_on_micros") on_p50 = h.p50;
  }
  double speedup = on_p50 > 0 ? off_p50 / on_p50 : 0;
  std::printf("steady-epoch p50: off=%.0fus on=%.0fus speedup=%.1fx "
              "(acceptance bar: >=2x)\n",
              off_p50, on_p50, speedup);
  std::printf("results: %s\n", jsonl.path().c_str());
  return 0;
}
