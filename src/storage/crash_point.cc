#include "storage/crash_point.h"

#include <csignal>
#include <cstdlib>
#include <string>

#include <atomic>

#include <unistd.h>

namespace netmark::storage {

namespace {

struct CrashConfig {
  bool configured = false;
  std::string point;
  long after = 1;
};

const CrashConfig& Config() {
  static const CrashConfig config = [] {
    CrashConfig c;
    const char* point = std::getenv("NETMARK_CRASH_POINT");
    if (point == nullptr || point[0] == '\0') return c;
    c.configured = true;
    c.point = point;
    const char* after = std::getenv("NETMARK_CRASH_AFTER");
    if (after != nullptr) {
      c.after = std::strtol(after, nullptr, 10);
      if (c.after < 1) c.after = 1;
    }
    return c;
  }();
  return config;
}

std::atomic<long> g_hits{0};

}  // namespace

void MaybeCrashPoint(std::string_view point) {
  const CrashConfig& config = Config();
  if (!config.configured || config.point != point) return;
  if (g_hits.fetch_add(1, std::memory_order_relaxed) + 1 >= config.after) {
    // SIGKILL, not abort(): no atexit handlers, no stream flush — the same
    // torn state a power cut would leave.
    ::kill(::getpid(), SIGKILL);
  }
}

bool CrashInjectionConfigured() { return Config().configured; }

}  // namespace netmark::storage
