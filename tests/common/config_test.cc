#include "common/config.h"

#include <gtest/gtest.h>

namespace netmark {
namespace {

constexpr const char* kSample = R"(
# top-level comment
root_key = root value

[Context]
tags = h1, h2, title
; semicolon comment
priority = 3

[intense]
tags = b, strong
enabled = yes
)";

TEST(ConfigTest, ParsesSectionsAndKeys) {
  auto cfg = Config::Parse(kSample);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(*cfg->Get("", "root_key"), "root value");
  EXPECT_EQ(*cfg->Get("context", "tags"), "h1, h2, title");
  EXPECT_EQ(cfg->GetIntOr("context", "priority", -1), 3);
}

TEST(ConfigTest, SectionAndKeyLookupIsCaseInsensitive) {
  auto cfg = Config::Parse(kSample);
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(*cfg->Get("CONTEXT", "TAGS"), "h1, h2, title");
}

TEST(ConfigTest, MissingEntriesReturnNotFound) {
  auto cfg = Config::Parse(kSample);
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->Get("context", "nope").status().IsNotFound());
  EXPECT_TRUE(cfg->Get("nosection", "tags").status().IsNotFound());
  EXPECT_EQ(cfg->GetOr("nosection", "tags", "fallback"), "fallback");
}

TEST(ConfigTest, BoolParsing) {
  auto cfg = Config::Parse(kSample);
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->GetBoolOr("intense", "enabled", false));
  EXPECT_FALSE(cfg->GetBoolOr("intense", "missing", false));
  EXPECT_TRUE(cfg->GetBoolOr("intense", "tags", true));  // non-bool -> fallback
}

TEST(ConfigTest, RejectsMalformedLines) {
  EXPECT_TRUE(Config::Parse("[unterminated").status().IsParseError());
  EXPECT_TRUE(Config::Parse("no equals sign").status().IsParseError());
  EXPECT_TRUE(Config::Parse("= empty key").status().IsParseError());
}

TEST(ConfigTest, SetOverwritesAndCreates) {
  Config cfg;
  cfg.Set("s", "k", "v1");
  EXPECT_EQ(*cfg.Get("s", "k"), "v1");
  cfg.Set("s", "k", "v2");
  EXPECT_EQ(*cfg.Get("s", "k"), "v2");
  EXPECT_EQ(cfg.Keys("s").size(), 1u);
}

TEST(ConfigTest, SectionsAndKeysEnumerate) {
  auto cfg = Config::Parse(kSample);
  ASSERT_TRUE(cfg.ok());
  auto sections = cfg->Sections();
  EXPECT_EQ(sections.size(), 3u);  // "", context, intense
  EXPECT_TRUE(cfg->HasSection("context"));
  EXPECT_FALSE(cfg->HasSection("simulation"));
  auto keys = cfg->Keys("intense");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "tags");
}

}  // namespace
}  // namespace netmark
