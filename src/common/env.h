// Env: the storage I/O boundary.
//
// Every byte the storage layer moves to or from disk goes through an Env —
// `Env::Default()` is thin POSIX (open/pread/pwrite/fdatasync/ftruncate with
// EINTR retries and path-qualified errors), while FaultInjectingEnv wraps any
// Env and fails the Nth operation with EIO, ENOSPC, a short write, a failed
// fsync, or a torn page, so disk-fault handling is testable without real bad
// media. Pager, Wal, Recovery, and Catalog all take an Env; production code
// passes nullptr and gets the default.

#ifndef NETMARK_COMMON_ENV_H_
#define NETMARK_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace netmark {

namespace internal {
struct FaultCounters;
}  // namespace internal

/// \brief A positioned-I/O handle to one open file.
///
/// Read and Write are full-length or error: short transfers and EINTR are
/// retried internally, ENOSPC surfaces as CapacityExceeded, and every error
/// message carries the file path plus the errno text. Thread-compatible the
/// same way a file descriptor is: concurrent positioned reads are fine,
/// callers serialize writes against reads of the same range themselves.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `len` bytes at `offset` into `buf`.
  /// Hitting EOF before `len` bytes is an IOError ("short read").
  virtual Status Read(uint64_t offset, size_t len, void* buf) = 0;

  /// Writes exactly `len` bytes from `buf` at `offset`.
  virtual Status Write(uint64_t offset, const void* buf, size_t len) = 0;

  /// Flushes written data to stable storage (fdatasync).
  virtual Status Sync() = 0;

  /// Truncates (or extends) the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Current file size in bytes.
  virtual Result<uint64_t> Size() = 0;

  virtual const std::string& path() const = 0;
};

/// \brief Factory for File handles plus whole-file convenience operations.
class Env {
 public:
  virtual ~Env() = default;

  /// The production POSIX environment (process-lifetime singleton).
  static Env* Default();

  /// Opens `path` read-write; creates it when `create` is true.
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                                 bool create) = 0;

  /// Reads the entire file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Durably replaces `path` with `contents` (write temp + fsync + rename).
  virtual Status WriteFileAtomic(const std::string& path,
                                 std::string_view contents) = 0;

  virtual bool FileExists(const std::string& path) = 0;
};

/// \brief One injected fault: which operation kind fails, and when.
struct FaultSpec {
  enum class Kind {
    kNone,
    kReadEio,      ///< the Nth read fails with EIO (one-shot)
    kWriteEio,     ///< writes fail with EIO from the Nth on (sticky)
    kWriteEnospc,  ///< writes fail with ENOSPC from the Nth on (sticky)
    kWriteShort,   ///< the Nth write lands as two partial writes (one-shot;
                   ///< transparent to callers — exercises the retry contract)
    kWriteTorn,    ///< the Nth write persists only a garbled prefix, then the
                   ///< process _exit()s — simulated power loss mid-write
    kFsyncFail,    ///< Sync() fails with EIO from the Nth on (sticky)
  };

  Kind kind = Kind::kNone;
  /// 1-based index of the triggering operation, counted per kind category
  /// (reads / writes / syncs) across all files of the env.
  uint64_t nth = 1;
  /// Sticky faults keep failing every subsequent operation; one-shot faults
  /// fire once. Defaults match the semantics noted on each kind.
  bool sticky = false;

  /// Parses "kind:nth", e.g. "write_enospc:7" (the NETMARK_DISK_FAULT
  /// format). Sticky-by-default kinds come back sticky.
  static Result<FaultSpec> Parse(std::string_view text);
};

/// \brief Env wrapper that injects one configured fault, deterministically.
///
/// Operation counters are env-wide (spanning every file opened through it),
/// so "fail the 7th write" means the 7th write the storage layer issues, no
/// matter which file it targets. Thread-safe.
class FaultInjectingEnv : public Env {
 public:
  explicit FaultInjectingEnv(FaultSpec spec, Env* base = nullptr);

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         bool create) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  Status WriteFileAtomic(const std::string& path,
                         std::string_view contents) override;
  bool FileExists(const std::string& path) override;

  uint64_t reads() const;
  uint64_t writes() const;
  uint64_t syncs() const;
  uint64_t faults_injected() const;

 private:
  FaultSpec spec_;
  Env* base_;
  std::shared_ptr<internal::FaultCounters> counters_;
};

/// \brief Builds a FaultInjectingEnv from the NETMARK_DISK_FAULT environment
/// variable ("kind:nth"), or returns nullptr when it is unset or malformed.
std::unique_ptr<Env> MaybeFaultInjectingEnvFromEnvironment();

}  // namespace netmark

#endif  // NETMARK_COMMON_ENV_H_
