#include "convert/html_converter.h"

#include "common/string_util.h"
#include "xml/parser.h"

namespace netmark::convert {

bool HtmlConverter::Sniff(std::string_view content) const {
  std::string_view t = netmark::TrimView(content);
  if (t.empty() || t[0] != '<') return false;
  std::string head = netmark::ToLower(t.substr(0, 256));
  return head.find("<!doctype html") != std::string::npos ||
         head.find("<html") != std::string::npos ||
         head.find("<body") != std::string::npos;
}

netmark::Result<xml::Document> HtmlConverter::Convert(std::string_view content,
                                                      const ConvertContext&) const {
  return xml::ParseHtml(content);
}

bool XmlConverter::Sniff(std::string_view content) const {
  std::string_view t = netmark::TrimView(content);
  return netmark::StartsWith(t, "<?xml") ||
         (!t.empty() && t[0] == '<' && !HtmlConverter().Sniff(content));
}

netmark::Result<xml::Document> XmlConverter::Convert(std::string_view content,
                                                     const ConvertContext&) const {
  auto strict = xml::ParseXml(content);
  if (strict.ok()) return strict;
  // NETMARK ingests whatever lands in the drop folder; near-XML content gets
  // the tolerant parser rather than a rejection.
  return xml::ParseHtml(content);
}

}  // namespace netmark::convert
