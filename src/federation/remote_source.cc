#include "federation/remote_source.h"

#include "common/string_util.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace netmark::federation {

namespace {

/// Decodes the `<span>` children of `el` (a <trace> or a parent <span>)
/// into flat SpanData entries. Remote timestamps come from another clock,
/// so only the `us` duration attribute is trusted: finished spans encode as
/// start=1 / end=1+us, unfinished ones keep end=0 (the render path treats
/// end==0 as open).
void CollectRemoteSpans(const xml::Document& doc, xml::NodeId el, int parent,
                        std::vector<observability::SpanData>* out) {
  for (xml::NodeId child = doc.first_child(el); child != xml::kInvalidNode;
       child = doc.next_sibling(child)) {
    if (doc.kind(child) != xml::NodeKind::kElement) continue;
    if (doc.name(child) == "annotation") {
      if (parent >= 0 && parent < static_cast<int>(out->size())) {
        (*out)[static_cast<size_t>(parent)].annotations.emplace_back(
            std::string(doc.GetAttribute(child, "key")),
            std::string(doc.GetAttribute(child, "value")));
      }
      continue;
    }
    if (doc.name(child) != "span") continue;
    const int id = static_cast<int>(out->size());
    observability::SpanData span;
    span.id = id;
    span.parent = parent;
    span.name = std::string(doc.GetAttribute(child, "name"));
    span.ok = doc.GetAttribute(child, "ok") != "false";
    span.note = std::string(doc.GetAttribute(child, "note"));
    span.remote = true;
    if (doc.GetAttribute(child, "unfinished") == "true") {
      span.start_micros = 1;
      span.end_micros = 0;
    } else {
      auto us = netmark::ParseInt64(doc.GetAttribute(child, "us"));
      span.start_micros = 1;
      span.end_micros = 1 + (us.ok() && *us > 0 ? *us : 0);
    }
    out->push_back(std::move(span));
    CollectRemoteSpans(doc, child, id, out);
  }
}

}  // namespace

netmark::Result<std::vector<FederatedHit>> ParseResultsDocument(
    std::string_view body, std::vector<observability::SpanData>* remote_spans) {
  NETMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseXml(body));
  xml::NodeId results = doc.DocumentElement();
  if (results == xml::kInvalidNode || doc.name(results) != "results") {
    return netmark::Status::ParseError("remote response is not a <results> document");
  }
  if (remote_spans != nullptr) {
    xml::NodeId trace_el = doc.FirstChildElement(results, "trace");
    if (trace_el != xml::kInvalidNode) {
      CollectRemoteSpans(doc, trace_el, -1, remote_spans);
    }
  }
  std::vector<FederatedHit> out;
  for (xml::NodeId result = doc.first_child(results); result != xml::kInvalidNode;
       result = doc.next_sibling(result)) {
    if (doc.kind(result) != xml::NodeKind::kElement || doc.name(result) != "result") {
      continue;
    }
    FederatedHit hit;
    hit.file_name = std::string(doc.GetAttribute(result, "doc"));
    auto doc_id = netmark::ParseInt64(doc.GetAttribute(result, "docid"));
    if (doc_id.ok()) hit.doc_id = *doc_id;
    xml::NodeId context = doc.FirstChildElement(result, "context");
    if (context != xml::kInvalidNode) hit.heading = doc.TextContent(context);
    xml::NodeId content = doc.FirstChildElement(result, "content");
    if (content != xml::kInvalidNode) {
      hit.text = doc.TextContent(content);
      std::string markup;
      for (xml::NodeId c = doc.first_child(content); c != xml::kInvalidNode;
           c = doc.next_sibling(c)) {
        markup += xml::Serialize(doc, c);
      }
      hit.markup = std::move(markup);
    }
    out.push_back(std::move(hit));
  }
  return out;
}

netmark::Result<std::vector<FederatedHit>> RemoteSource::Execute(
    const query::XdbQuery& query, const CallContext& ctx) {
  if (ctx.expired()) {
    return netmark::Status::DeadlineExceeded("remote source " + name_ +
                                             ": deadline expired before send");
  }
  // Deadline propagation: tell the remote how much budget is left so it can
  // bound its own fan-out instead of answering a query nobody is waiting for.
  query::XdbQuery pushed = query;
  if (ctx.bounded()) {
    int64_t remaining = ctx.remaining_ms();
    if (pushed.timeout_ms == 0 || remaining < pushed.timeout_ms) {
      pushed.timeout_ms = remaining > 0 ? remaining : 1;
    }
  }
  std::string path = "/xdb?" + pushed.ToQueryString();
  NETMARK_ASSIGN_OR_RETURN(std::string body, transport_->Get(path, ctx));
  std::vector<observability::SpanData> remote_spans;
  auto hits = ParseResultsDocument(
      body, ctx.trace != nullptr ? &remote_spans : nullptr);
  if (!hits.ok()) {
    return hits.status().WithContext("remote source " + name_);
  }
  if (ctx.trace != nullptr && !remote_spans.empty()) {
    // Stitch the remote subtree under this hop's span (the local source:*
    // span via ctx.span) — one coherent tree across processes.
    int grafted = ctx.trace->Graft(ctx.span, remote_spans);
    if (grafted >= 0) ctx.trace->Annotate(grafted, "remote", name_);
  }
  return hits;
}

}  // namespace netmark::federation
