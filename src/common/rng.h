// Deterministic pseudo-random generator used by workload generators and
// property tests. A thin wrapper over a SplitMix64/xorshift mix so results
// are reproducible across standard libraries.

#ifndef NETMARK_COMMON_RNG_H_
#define NETMARK_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace netmark {

/// \brief Seeded, portable PRNG (SplitMix64 core).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Zipf-like skewed index in [0, n): rank r selected w.p. ∝ 1/(r+1)^theta.
  /// Approximate (rejection-free) but adequate for workload skew.
  size_t Zipf(size_t n, double theta = 1.0);

 private:
  uint64_t state_;
};

}  // namespace netmark

#endif  // NETMARK_COMMON_RNG_H_
