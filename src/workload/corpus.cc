#include "workload/corpus.h"

#include "common/string_util.h"

namespace netmark::workload {

namespace {

const std::vector<std::string> kHeadings = {
    "Abstract",          "Introduction",     "Technical Approach",
    "Budget",            "Budget Summary",   "Management Plan",
    "Risk Assessment",   "Schedule",         "Technology Gap",
    "Lessons Learned",   "Conclusions",      "Recommendations",
};

const std::vector<std::string> kTopics = {
    "shuttle",    "engine",     "anomaly",    "telemetry", "propulsion",
    "avionics",   "thermal",    "mission",    "payload",   "orbiter",
    "inspection", "certification", "turbine", "nozzle",    "sensor",
    "software",   "integration", "valve",     "launch",    "descent",
};

const std::vector<std::string> kFiller = {
    "the",  "of",      "for",     "during", "analysis", "system",  "review",
    "data", "program", "project", "test",   "flight",   "results", "plan",
    "performance",     "assessment",        "requirements",        "status",
};

const std::vector<std::string> kDivisions = {
    "Aeronautics", "Exploration", "Science", "SpaceOperations", "Safety",
};

const std::vector<std::string> kCenters = {
    "Ames", "Johnson", "Kennedy", "Marshall", "Glenn", "Langley",
};

}  // namespace

const std::vector<std::string>& CorpusGenerator::StandardHeadings() {
  return kHeadings;
}
const std::vector<std::string>& CorpusGenerator::TopicTerms() { return kTopics; }
const std::vector<std::string>& CorpusGenerator::Divisions() { return kDivisions; }

std::string CorpusGenerator::RandomTopicTerm() {
  return kTopics[rng_.Zipf(kTopics.size(), 0.8)];
}

std::string CorpusGenerator::RandomHeading() { return rng_.Pick(kHeadings); }

std::string CorpusGenerator::Sentence(size_t words) {
  std::string out;
  for (size_t i = 0; i < words; ++i) {
    if (i != 0) out += ' ';
    // Mix topical terms (searchable) with filler.
    out += rng_.Chance(0.35) ? kTopics[rng_.Zipf(kTopics.size(), 0.8)]
                             : rng_.Pick(kFiller);
  }
  if (!out.empty()) out[0] = static_cast<char>(std::toupper(out[0]));
  out += '.';
  return out;
}

std::string CorpusGenerator::ParagraphText(size_t sentences) {
  std::string out;
  for (size_t i = 0; i < sentences; ++i) {
    if (i != 0) out += ' ';
    out += Sentence(6 + rng_.Uniform(10));
  }
  return out;
}

GeneratedDoc CorpusGenerator::Proposal(int index) {
  const std::string& division = rng_.Pick(kDivisions);
  int64_t amount = 50 + static_cast<int64_t>(rng_.Uniform(950));  // $K
  std::string title = "Advanced " + kTopics[rng_.Uniform(kTopics.size())] +
                      " research proposal " + std::to_string(index);

  std::string nrt;
  nrt += ".meta division " + division + "\n";
  nrt += ".meta amount " + std::to_string(amount) + "\n";
  nrt += ".font 24 bold\n" + title + "\n";
  nrt += ".font 11\nPrincipal investigator: investigator" + std::to_string(index) +
         " at NASA " + rng_.Pick(kCenters) + ".\n\n";
  nrt += ".font 16 bold\nAbstract\n.font 11\n" + ParagraphText(3) + "\n\n";
  nrt += ".font 16 bold\nTechnical Approach\n.font 11\n" + ParagraphText(4) + "\n\n" +
         ParagraphText(3) + "\n\n";
  nrt += ".font 16 bold\nBudget\n.font 11\nThe requested amount is " +
         std::to_string(amount) + " thousand dollars for division " + division +
         ". " + ParagraphText(2) + "\n\n";
  nrt += ".font 16 bold\nManagement Plan\n.font 11\n" + ParagraphText(3) + "\n";
  return {"proposal_" + std::to_string(index) + ".doc", nrt};
}

GeneratedDoc CorpusGenerator::TaskPlan(int index) {
  int64_t fy1 = 100 + static_cast<int64_t>(rng_.Uniform(900));
  int64_t fy2 = 100 + static_cast<int64_t>(rng_.Uniform(900));
  std::string txt;
  txt += "TASK PLAN " + std::to_string(index) + "\n\n";
  txt += "1. Introduction\n" + ParagraphText(2) + "\n\n";
  txt += "2. Technical Approach\n" + ParagraphText(3) + "\n\n";
  txt += "3. Budget Summary\n";
  txt += "Task " + std::to_string(index) + " requires " + std::to_string(fy1) +
         " thousand in FY2005 and " + std::to_string(fy2) +
         " thousand in FY2006. " + ParagraphText(1) + "\n\n";
  txt += "4. Schedule\n" + ParagraphText(2) + "\n";
  return {"taskplan_" + std::to_string(index) + ".txt", txt};
}

GeneratedDoc CorpusGenerator::AnomalyReport(int index) {
  const std::string& system = kTopics[rng_.Uniform(kTopics.size())];
  std::string severity = rng_.Chance(0.2) ? "critical" : "minor";
  std::string html;
  html += "<HTML><HEAD><TITLE>Anomaly " + std::to_string(index) +
          "</TITLE></HEAD><BODY>";
  html += "<H1>Anomaly Description</H1><P>During flight test the " + system +
          " exhibited a " + severity + " anomaly. " + ParagraphText(2) + "<P>" +
          ParagraphText(1);
  html += "<H1>Corrective Action</H1><P>" + ParagraphText(2);
  html += "<H1>Disposition</H1><P>The anomaly was closed as " + severity + ". " +
          Sentence(8);
  html += "</BODY></HTML>";
  return {"anomaly_" + std::to_string(index) + ".html", html};
}

GeneratedDoc CorpusGenerator::LessonLearned(int index) {
  const std::string& topic = kTopics[rng_.Uniform(kTopics.size())];
  std::string xml;
  xml += "<document>";
  xml += "<context>Title</context><content>Lesson " + std::to_string(index) +
         " regarding " + topic + "</content>";
  xml += "<context>Lesson</context><content>" + ParagraphText(3) + "</content>";
  xml += "<context>Recommendations</context><content>" + ParagraphText(2) +
         "</content>";
  xml += "</document>";
  return {"lesson_" + std::to_string(index) + ".xml", xml};
}

GeneratedDoc CorpusGenerator::RiskMemo(int index) {
  std::string md;
  md += "# Risk Assessment\n\n";
  md += "Memo " + std::to_string(index) + " covering **" + RandomTopicTerm() +
        "** risks.\n\n" + ParagraphText(2) + "\n\n";
  md += "## Mitigation\n\n- " + Sentence(8) + "\n- " + Sentence(7) + "\n\n";
  md += "## Conclusions\n\n" + ParagraphText(2) + "\n";
  return {"risk_" + std::to_string(index) + ".md", md};
}

GeneratedDoc CorpusGenerator::BudgetSheet(int index) {
  std::string csv = "task,division,fy2005,fy2006\n";
  int rows = 4 + static_cast<int>(rng_.Uniform(8));
  for (int r = 0; r < rows; ++r) {
    csv += "task" + std::to_string(index * 100 + r) + "," + rng_.Pick(kDivisions) +
           "," + std::to_string(100 + rng_.Uniform(900)) + "," +
           std::to_string(100 + rng_.Uniform(900)) + "\n";
  }
  return {"budget_" + std::to_string(index) + ".csv", csv};
}

std::vector<GeneratedDoc> CorpusGenerator::MixedCorpus(size_t n) {
  std::vector<GeneratedDoc> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int index = static_cast<int>(i);
    switch (i % 6) {
      case 0: out.push_back(Proposal(index)); break;
      case 1: out.push_back(TaskPlan(index)); break;
      case 2: out.push_back(AnomalyReport(index)); break;
      case 3: out.push_back(LessonLearned(index)); break;
      case 4: out.push_back(RiskMemo(index)); break;
      default: out.push_back(BudgetSheet(index)); break;
    }
  }
  return out;
}

}  // namespace netmark::workload
