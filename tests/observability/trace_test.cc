// Trace/span tree assembly, ScopedSpan RAII semantics (including the inert
// null-trace form every call site relies on), concurrent span appends, and
// the slow-query log built on top of traces.

#include "observability/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "observability/slow_log.h"

namespace netmark::observability {
namespace {

TEST(TraceTest, SpanTreeAssembly) {
  Trace trace;
  int root = trace.StartSpan("xdb");
  int fed = trace.StartSpan("federated", root);
  int s0 = trace.StartSpan("source:a", fed);
  int s1 = trace.StartSpan("source:b", fed);
  trace.EndSpan(s0);
  trace.EndSpan(s1, /*ok=*/false, "HTTP 500");
  trace.EndSpan(fed);
  trace.EndSpan(root);

  std::vector<SpanData> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Ids are indices; parents always precede children.
  EXPECT_EQ(spans[root].parent, -1);
  EXPECT_EQ(spans[fed].parent, root);
  EXPECT_EQ(spans[s0].parent, fed);
  EXPECT_EQ(spans[s1].parent, fed);
  EXPECT_EQ(spans[s1].name, "source:b");
  EXPECT_FALSE(spans[s1].ok);
  EXPECT_EQ(spans[s1].note, "HTTP 500");
  for (const SpanData& s : spans) {
    EXPECT_TRUE(s.finished());
    EXPECT_GE(s.duration_micros(), 0);
  }
}

TEST(TraceTest, UnfinishedSpanShowsInSnapshot) {
  Trace trace;
  int root = trace.StartSpan("xdb");
  int straggler = trace.StartSpan("source:slow", root);
  trace.EndSpan(root);
  std::vector<SpanData> spans = trace.Snapshot();
  EXPECT_TRUE(spans[root].finished());
  EXPECT_FALSE(spans[straggler].finished());
  EXPECT_EQ(spans[straggler].duration_micros(), 0);
}

TEST(TraceTest, Annotations) {
  Trace trace;
  int id = trace.StartSpan("federated");
  trace.Annotate(id, "databank", "bank");
  trace.Annotate(id, "sources", "3");
  trace.EndSpan(id);
  std::vector<SpanData> spans = trace.Snapshot();
  ASSERT_EQ(spans[0].annotations.size(), 2u);
  EXPECT_EQ(spans[0].annotations[0].first, "databank");
  EXPECT_EQ(spans[0].annotations[0].second, "bank");
}

TEST(TraceTest, RootDurationTracksSpanZero) {
  Trace trace;
  int root = trace.StartSpan("xdb");
  trace.EndSpan(root);
  std::vector<SpanData> spans = trace.Snapshot();
  EXPECT_EQ(trace.RootDurationMicros(), spans[0].duration_micros());
}

TEST(TraceTest, ConcurrentSpanAppends) {
  Trace trace;
  int root = trace.StartSpan("sweep");
  constexpr int kThreads = 8;
  constexpr int kSpansEach = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&trace, root, t] {
      for (int i = 0; i < kSpansEach; ++i) {
        int id = trace.StartSpan("prepare", root);
        trace.Annotate(id, "worker", std::to_string(t));
        trace.EndSpan(id);
      }
    });
  }
  for (auto& th : pool) th.join();
  trace.EndSpan(root);
  std::vector<SpanData> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u + kThreads * kSpansEach);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].parent, root);
    EXPECT_TRUE(spans[i].finished());
  }
}

TEST(ScopedSpanTest, EndsAtScopeExit) {
  Trace trace;
  {
    ScopedSpan span(&trace, "xdb");
    span.Annotate("query", "context=a");
  }
  std::vector<SpanData> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].finished());
  EXPECT_TRUE(spans[0].ok);
}

TEST(ScopedSpanTest, ExplicitEndWinsOverDestructor) {
  Trace trace;
  {
    ScopedSpan span(&trace, "execute");
    span.End(/*ok=*/false, "parse error");
    // Destructor must not overwrite the explicit outcome.
  }
  std::vector<SpanData> spans = trace.Snapshot();
  EXPECT_FALSE(spans[0].ok);
  EXPECT_EQ(spans[0].note, "parse error");
}

TEST(ScopedSpanTest, NullTraceIsInert) {
  ScopedSpan span(nullptr, "anything");
  EXPECT_EQ(span.id(), -1);
  span.Annotate("k", "v");  // must not crash
  span.End(false, "err");
  ScopedSpan defaulted;  // the default-constructed form, equally inert
  EXPECT_EQ(defaulted.id(), -1);
}

TEST(TraceTest, TraceIdAccessors) {
  Trace trace;
  EXPECT_EQ(trace.trace_id(), "");
  trace.set_trace_id("4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(trace.trace_id(), "4bf92f3577b34da6a3ce929d0e0e4736");
}

TEST(TraceTest, AddCompletedSpanBackdates) {
  Trace trace;
  int root = trace.StartSpan("xdb");
  int waited = trace.AddCompletedSpan("queue_wait", root, 1500);
  trace.EndSpan(root);
  std::vector<SpanData> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[waited].parent, root);
  EXPECT_TRUE(spans[waited].finished());
  EXPECT_EQ(spans[waited].duration_micros(), 1500);
  // Backdated: it started before it was recorded, never in the future.
  EXPECT_LE(spans[waited].start_micros, spans[waited].end_micros);
}

TEST(TraceTest, GraftRenumbersForeignSubtree) {
  // The foreign vector is what ParseResultsDocument produces: ids are
  // indices, parents precede children, timestamps synthetic.
  std::vector<SpanData> foreign(3);
  foreign[0].id = 0;
  foreign[0].parent = -1;
  foreign[0].name = "xdb";
  foreign[0].start_micros = 1;
  foreign[0].end_micros = 101;
  foreign[1].id = 1;
  foreign[1].parent = 0;
  foreign[1].name = "execute";
  foreign[1].start_micros = 1;
  foreign[1].end_micros = 81;
  foreign[2].id = 2;
  foreign[2].parent = 0;
  foreign[2].name = "source:slow";
  foreign[2].start_micros = 1;
  foreign[2].end_micros = 0;  // unfinished straggler on the remote

  Trace trace;
  int root = trace.StartSpan("xdb");
  int source = trace.StartSpan("source:remote", root);
  int grafted = trace.Graft(source, foreign);
  trace.EndSpan(source);
  trace.EndSpan(root);

  std::vector<SpanData> spans = trace.Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(grafted, 2);
  // Foreign root re-parents to the local source span; children keep their
  // relative structure under renumbered ids.
  EXPECT_EQ(spans[2].parent, source);
  EXPECT_EQ(spans[2].name, "xdb");
  EXPECT_EQ(spans[3].parent, 2);
  EXPECT_EQ(spans[4].parent, 2);
  for (int i = 2; i < 5; ++i) EXPECT_TRUE(spans[i].remote);
  EXPECT_EQ(spans[2].duration_micros(), 100);
  EXPECT_FALSE(spans[4].finished());
  // An empty foreign set grafts nothing.
  EXPECT_EQ(trace.Graft(root, {}), -1);
}

TEST(SlowLogTest, ThresholdEnvOverride) {
  unsetenv("NETMARK_SLOW_QUERY_MS");
  EXPECT_EQ(ResolveSlowQueryThresholdMs(250), 250);
  setenv("NETMARK_SLOW_QUERY_MS", "75", 1);
  EXPECT_EQ(ResolveSlowQueryThresholdMs(250), 75);
  setenv("NETMARK_SLOW_QUERY_MS", "not-a-number", 1);
  EXPECT_EQ(ResolveSlowQueryThresholdMs(250), 250);
  unsetenv("NETMARK_SLOW_QUERY_MS");
}

TEST(SlowLogTest, FormatSpansCompactJoinsParentPaths) {
  Trace trace;
  int root = trace.StartSpan("xdb");
  int fed = trace.StartSpan("federated", root);
  int src = trace.StartSpan("source:a", fed);
  trace.EndSpan(src);
  trace.EndSpan(fed);
  trace.EndSpan(root);
  std::string compact = FormatSpansCompact(trace.Snapshot());
  EXPECT_NE(compact.find("xdb"), std::string::npos);
  EXPECT_NE(compact.find("xdb/federated"), std::string::npos);
  EXPECT_NE(compact.find("xdb/federated/source:a"), std::string::npos);
}

TEST(SlowLogTest, LogsOnlyOverThreshold) {
  std::vector<std::string> lines;
  Logger::Instance().SetSink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  LogLevel saved = Logger::Instance().level();
  Logger::Instance().SetLevel(LogLevel::kWarning);

  Trace trace;
  trace.set_trace_id("4bf92f3577b34da6a3ce929d0e0e4736");
  int root = trace.StartSpan("xdb");
  trace.EndSpan(root);
  // 5ms request, 10ms threshold: silent.
  MaybeLogSlowQuery("/xdb", "context=a", 5000, 10, trace);
  EXPECT_TRUE(lines.empty());
  // 50ms request, 10ms threshold: one structured line.
  MaybeLogSlowQuery("/xdb", "context=a", 50000, 10, trace);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("event=slow_query"), std::string::npos);
  EXPECT_NE(lines[0].find("endpoint=/xdb"), std::string::npos);
  // The trace id is the jump-off point to /traces?id=.
  EXPECT_NE(lines[0].find("trace_id=4bf92f3577b34da6a3ce929d0e0e4736"),
            std::string::npos);
  // '=' in the value forces quoting, keeping the line one awk-able record.
  EXPECT_NE(lines[0].find("query=\"context=a\""), std::string::npos);
  // Threshold 0 disables entirely.
  MaybeLogSlowQuery("/xdb", "context=a", 50000, 0, trace);
  EXPECT_EQ(lines.size(), 1u);

  Logger::Instance().SetLevel(saved);
  Logger::Instance().SetSink(nullptr);
}

}  // namespace
}  // namespace netmark::observability
