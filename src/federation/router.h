// Databanks and the thin query router (paper §2.1.5, Fig 8).
//
// "Integration can be specified (and executed) at the client side by
// specifying databanks. ... Middleware requirements are reduced to needing
// just a thin router capability across the various information sources."
//
// A databank is a named list of sources created by a *declarative* step —
// no schemas, no views, no mappings. The router decomposes each query per
// source capability, pushes down the supported part, and augments the rest.
//
// Resilience layer (DESIGN.md §"Failure semantics"): sources are fanned out
// concurrently under one per-query deadline; transient failures are retried
// with jittered exponential backoff; persistently dead sources are isolated
// behind per-source circuit breakers; and every query returns partial
// results — the hits that arrived plus a per-source outcome report — because
// "a failing source must not take down the whole databank query".

#ifndef NETMARK_FEDERATION_ROUTER_H_
#define NETMARK_FEDERATION_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/backoff.h"
#include "common/thread_reaper.h"
#include "federation/augment.h"
#include "federation/circuit_breaker.h"
#include "federation/source.h"
#include "observability/metrics.h"
#include "observability/trace.h"

namespace netmark::federation {

/// A named source list — the whole "integration specification".
struct Databank {
  std::string name;
  std::vector<std::string> source_names;
};

/// Router-wide resilience defaults (overridable per source).
struct RouterOptions {
  /// Worker threads per federated query (clamped to the source count).
  int max_parallel_sources = 4;
  /// Query deadline when the query carries no timeout (0 = unbounded).
  int64_t default_timeout_ms = 30000;
  /// Retries per source beyond the first attempt.
  int max_retries = 2;
  /// Backoff schedule between retries.
  netmark::BackoffPolicy backoff;
  /// Default breaker thresholds for every source.
  CircuitBreakerConfig breaker;
  /// Seed for the backoff jitter (per-source streams are derived from it, so
  /// chaos tests replay identically).
  uint64_t rng_seed = 0x6E65746D61726BULL;
  /// Injectable sleep for deterministic tests (default: real sleep).
  std::function<void(int64_t)> sleep_ms;
};

/// Per-source overrides from the databank configuration.
struct SourcePolicy {
  /// Cap on any single attempt against this source (0 = query deadline only).
  int64_t timeout_ms = 0;
  /// Retries beyond the first attempt (-1 = RouterOptions.max_retries).
  int max_retries = -1;
  /// Breaker thresholds (unset = RouterOptions.breaker).
  std::optional<CircuitBreakerConfig> breaker;
};

/// Terminal state of one source within one federated query.
enum class SourceState {
  kOk,           ///< answered (possibly after retries)
  kTimedOut,     ///< deadline expired before an answer arrived
  kFailed,       ///< all attempts failed (or a non-retryable error)
  kBreakerOpen,  ///< skipped without a call: breaker is open
};

/// \brief Human-readable state name ("ok", "timed-out", ...).
std::string_view SourceStateToString(SourceState state);

/// How one source fared in one query — the partial-result annotation.
struct SourceOutcome {
  std::string source;
  SourceState state = SourceState::kOk;
  int attempts = 0;             ///< calls issued (0 when breaker-skipped)
  int64_t latency_micros = 0;   ///< wall time spent on this source
  size_t hits = 0;              ///< hits this source contributed
  std::string error;            ///< last error when state != kOk
};

/// Per-query accounting (also kept cumulatively; benches use this).
struct QueryStats {
  size_t sources_queried = 0;
  size_t pushed_down_full = 0;   ///< sources that ran the whole query
  size_t augmented = 0;          ///< sources whose results needed local work
  size_t raw_hits = 0;           ///< hits fetched from sources
  size_t final_hits = 0;         ///< hits after augmentation/merging
  size_t retries = 0;            ///< attempts beyond the first, all sources
  size_t source_failures = 0;    ///< sources ending kFailed
  size_t source_timeouts = 0;    ///< sources ending kTimedOut
  size_t breaker_skips = 0;      ///< sources ending kBreakerOpen
};

/// What a federated query returns: merged hits *plus* the per-source report.
/// `complete()` distinguishes a full answer from a degraded one.
struct FederatedResult {
  std::vector<FederatedHit> hits;
  std::vector<SourceOutcome> sources;  ///< in databank declaration order
  QueryStats stats;                    ///< this query only

  bool complete() const {
    for (const SourceOutcome& s : sources) {
      if (s.state != SourceState::kOk) return false;
    }
    return true;
  }
};

/// \brief Registry of sources + databanks, and the fan-out query engine.
class Router {
 public:
  Router() : Router(RouterOptions{}) {}
  explicit Router(RouterOptions options);

  /// Re-homes the router's metrics (cumulative query counters, per-source
  /// latency histograms, breaker-state gauges) onto `registry` — the Netmark
  /// facade calls this so one registry serves /metrics for the whole
  /// instance. Must be called before traffic; counts recorded earlier stay
  /// in the private registry and are not carried over. A standalone router
  /// keeps its private registry, so stats() works either way.
  void BindMetrics(observability::MetricsRegistry* registry);
  observability::MetricsRegistry* metrics() const { return metrics_; }

  /// Registers a source (owned by the router) with default resilience policy.
  netmark::Status RegisterSource(std::shared_ptr<Source> source);
  /// Registers a source with per-source resilience overrides.
  netmark::Status RegisterSource(std::shared_ptr<Source> source,
                                 const SourcePolicy& policy);
  /// Declares a databank over registered sources.
  netmark::Status DefineDatabank(const std::string& name,
                                 std::vector<std::string> source_names);

  bool HasDatabank(const std::string& name) const {
    return databanks_.count(name) != 0;
  }
  std::vector<std::string> DatabankNames() const;
  std::vector<std::string> SourceNames() const;
  Source* GetSource(const std::string& name);
  /// The breaker guarding `name` (null for unknown sources).
  CircuitBreaker* GetBreaker(const std::string& name);

  /// Runs `query` against every source of `databank` concurrently under one
  /// deadline, retrying transient failures, and merges the results in
  /// (declaration order, doc_id) order. Errors only on an unknown databank —
  /// source failures degrade to a partial result instead.
  netmark::Result<FederatedResult> QueryFederated(const std::string& databank,
                                                  const query::XdbQuery& query);

  /// Traced variant: per-source spans ("source:NAME") are parented under
  /// `parent_span`. Fan-out jobs take shared ownership of `trace` because a
  /// deadline-abandoned straggler may finish (and end its span) after the
  /// query returns. `trace` may be null (equivalent to the plain overload).
  netmark::Result<FederatedResult> QueryFederated(
      const std::string& databank, const query::XdbQuery& query,
      std::shared_ptr<observability::Trace> trace, int parent_span);

  /// Compatibility wrapper: QueryFederated, keeping only the merged hits.
  netmark::Result<std::vector<FederatedHit>> Query(const std::string& databank,
                                                   const query::XdbQuery& query);

  using Stats = QueryStats;
  /// Cumulative counters across all queries on this router (atomics; late
  /// stragglers of timed-out queries still report in when they finish).
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<Source> source;
    SourcePolicy policy;
    std::shared_ptr<CircuitBreaker> breaker;
    /// Per-source call latency (netmark_federation_source_micros{source=}).
    observability::Histogram* latency = nullptr;
  };

  /// Registry handles behind Router::Stats — the registry is the single
  /// source of truth; stats() is a thin view over these counters. Shared
  /// with in-flight workers so late stragglers of timed-out queries still
  /// report in when they finish, even after a BindMetrics rebind.
  struct MetricHandles {
    observability::Counter* queries = nullptr;
    observability::Counter* sources_queried = nullptr;
    observability::Counter* pushed_down_full = nullptr;
    observability::Counter* augmented = nullptr;
    observability::Counter* raw_hits = nullptr;
    observability::Counter* final_hits = nullptr;
    observability::Counter* retries = nullptr;
    observability::Counter* source_failures = nullptr;
    observability::Counter* source_timeouts = nullptr;
    observability::Counter* breaker_skips = nullptr;
    observability::Histogram* query_micros = nullptr;
  };

  /// (Re-)resolves every metric handle against metrics_.
  void BindHandles();
  /// Registers the per-source latency histogram + breaker-state gauge.
  void BindSourceMetrics(Entry& entry, const std::string& name);

  RouterOptions options_;
  std::map<std::string, Entry> sources_;
  std::map<std::string, Databank> databanks_;
  /// Private fallback registry so a standalone Router works unwired; the
  /// facade rebinds onto its own registry via BindMetrics().
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_ = nullptr;
  std::shared_ptr<MetricHandles> handles_;
  std::atomic<uint64_t> query_counter_{0};
  // Last member: joins straggler threads before the registries above die.
  netmark::ThreadReaper reaper_;
};

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_ROUTER_H_
