// XDB query execution over an XmlStore (paper §2.1.4).
//
// Pipeline: text-index probe -> RowId context walks -> heading filter ->
// section assembly. Content-only queries return whole documents; context
// queries (with or without content) return sections.

#ifndef NETMARK_QUERY_EXECUTOR_H_
#define NETMARK_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "observability/metrics.h"
#include "query/xdb_query.h"
#include "xmlstore/context_walk.h"
#include "xmlstore/xml_store.h"

namespace netmark::query {

/// One query hit. Context/combined queries produce one hit per matched
/// section; content-only queries one hit per matched document (with an
/// invalid context RowId).
struct QueryHit {
  int64_t doc_id = 0;
  std::string file_name;
  storage::RowId context;  ///< heading node; invalid for document-level hits
  std::string heading;     ///< section heading ("" for document-level hits)
  std::string text;        ///< section body text (or "" for document hits)
  std::string markup;      ///< serialized fragment (XPath hits only)
  /// Relevance score for content searches: matching nodes count 1 each,
  /// doubled when the match sits inside INTENSE (emphasis) markup — the use
  /// NETMARK's INTENSE node type exists for. Document-level hits are ordered
  /// by descending score, then doc id.
  double score = 0;
};

/// Execution knobs.
struct ExecuteOptions {
  /// Use the inverted index (default). When false, falls back to full scans
  /// — the ablation path for bench_fig6.
  bool use_text_index = true;
  /// Resolve context walks through logical-id index joins instead of RowId
  /// links — the ablation path for bench_ablation_rowid.
  bool use_index_joins_for_walks = false;
};

/// \brief Evaluates XDB queries against one store.
class QueryExecutor {
 public:
  explicit QueryExecutor(const xmlstore::XmlStore* store,
                         ExecuteOptions options = {})
      : store_(store), options_(options) {}

  /// Opts into cumulative instrumentation: every Execute then also bumps
  /// netmark_xdb_* counters and observes netmark_xdb_execute_micros on
  /// `registry` (null = back to uninstrumented). The per-Execute stats()
  /// view is unaffected.
  void BindMetrics(observability::MetricsRegistry* registry);

  /// Runs the query; hits are ordered by (doc_id, position).
  netmark::Result<std::vector<QueryHit>> Execute(const XdbQuery& query) const;

  /// Statistics from the most recent Execute (not thread safe; benches only).
  struct Stats {
    size_t index_probes = 0;
    size_t nodes_walked = 0;
    size_t sections_built = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  netmark::Result<std::vector<storage::RowId>> ClauseNodes(
      const textindex::QueryClause& clause) const;
  /// True when `node` sits under INTENSE markup (emphasis-boosted scoring).
  netmark::Result<bool> InsideIntense(storage::RowId node) const;
  netmark::Result<std::vector<QueryHit>> ContentOnly(const XdbQuery& query) const;
  netmark::Result<std::vector<QueryHit>> SectionQuery(const XdbQuery& query) const;
  netmark::Result<std::vector<QueryHit>> XPathQuery(const XdbQuery& query) const;
  netmark::Result<storage::RowId> Walk(storage::RowId start) const;

  /// Registry handles (all null when unbound): cumulative mirrors of Stats
  /// plus the execute latency histogram.
  struct MetricHandles {
    observability::Counter* executes = nullptr;
    observability::Counter* index_probes = nullptr;
    observability::Counter* nodes_walked = nullptr;
    observability::Counter* sections_built = nullptr;
    observability::Histogram* execute_micros = nullptr;
  };

  const xmlstore::XmlStore* store_;
  ExecuteOptions options_;
  mutable Stats stats_;
  MetricHandles handles_;
};

}  // namespace netmark::query

#endif  // NETMARK_QUERY_EXECUTOR_H_
