#include "server/daemon.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/temp_dir.h"

namespace netmark::server {
namespace {

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = netmark::TempDir::Make("daemon");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<netmark::TempDir>(std::move(*dir));
    auto store = xmlstore::XmlStore::Open(dir_->Sub("store").string());
    ASSERT_TRUE(store.ok());
    store_ = std::move(*store);
    converters_ = convert::ConverterRegistry::Default();
    options_.drop_dir = dir_->Sub("drop");
    options_.poll_interval = std::chrono::milliseconds(20);
    daemon_ = std::make_unique<IngestionDaemon>(store_.get(), &converters_, options_);
    std::filesystem::create_directories(options_.drop_dir);
  }

  void Drop(const std::string& name, const std::string& content) {
    ASSERT_TRUE(netmark::WriteFile(options_.drop_dir / name, content).ok());
  }

  std::unique_ptr<netmark::TempDir> dir_;
  std::unique_ptr<xmlstore::XmlStore> store_;
  convert::ConverterRegistry converters_;
  DaemonOptions options_;
  std::unique_ptr<IngestionDaemon> daemon_;
};

TEST_F(DaemonTest, ProcessOnceIngestsMixedFormats) {
  Drop("a.txt", "OVERVIEW\nshuttle overview text\n");
  Drop("b.md", "# Risk\n\nthermal risk memo\n");
  Drop("c.xml", "<document><context>T</context><content>body</content></document>");
  auto processed = daemon_->ProcessOnce();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 3);
  EXPECT_EQ(store_->document_count(), 3u);
  EXPECT_EQ(daemon_->files_ingested(), 3u);
  // Queryable immediately.
  EXPECT_FALSE(store_->TextLookup("shuttle").empty());
}

TEST_F(DaemonTest, ProcessedFilesAreMovedNotReingested) {
  Drop("once.txt", "HEADING\nwords\n");
  ASSERT_EQ(*daemon_->ProcessOnce(), 1);
  ASSERT_EQ(*daemon_->ProcessOnce(), 0);  // drop dir now empty
  EXPECT_EQ(store_->document_count(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(options_.drop_dir / "processed" / "once.txt"));
}

TEST_F(DaemonTest, FailedFilesQuarantined) {
  std::string binary("\x7f"
                     "ELF\x00\x01\x02",
                     7);
  Drop("garbage.bin", binary);
  Drop("fine.txt", "OK HEADING\ncontent\n");
  auto processed = daemon_->ProcessOnce();
  ASSERT_TRUE(processed.ok());
  EXPECT_EQ(*processed, 1);
  EXPECT_EQ(daemon_->files_failed(), 1u);
  EXPECT_TRUE(
      std::filesystem::exists(options_.drop_dir / "failed" / "garbage.bin"));
  EXPECT_EQ(store_->document_count(), 1u);
}

TEST_F(DaemonTest, HiddenFilesIgnored) {
  Drop(".hidden.swp", "junk");
  EXPECT_EQ(*daemon_->ProcessOnce(), 0);
}

TEST_F(DaemonTest, BackgroundThreadPicksUpDrops) {
  ASSERT_TRUE(daemon_->Start().ok());
  Drop("bg.txt", "BACKGROUND HEADING\npicked up asynchronously\n");
  // Wait for the poll loop (bounded).
  for (int i = 0; i < 200 && store_->document_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  daemon_->Stop();
  EXPECT_EQ(store_->document_count(), 1u);
  EXPECT_FALSE(store_->TextLookup("asynchronously").empty());
}

TEST_F(DaemonTest, DeleteModeRemovesFiles) {
  options_.keep_processed = false;
  IngestionDaemon daemon(store_.get(), &converters_, options_);
  Drop("gone.txt", "HEADING\nbye\n");
  ASSERT_EQ(*daemon.ProcessOnce(), 1);
  EXPECT_FALSE(std::filesystem::exists(options_.drop_dir / "gone.txt"));
  EXPECT_FALSE(std::filesystem::exists(options_.drop_dir / "processed" / "gone.txt"));
}

}  // namespace
}  // namespace netmark::server
