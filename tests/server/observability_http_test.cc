// The observability HTTP surface end to end through NetmarkService::Handle:
// GET /metrics (Prometheus exposition), GET /healthz (ok + degraded with an
// open breaker), and trace=1 XDB queries returning a consistent span tree.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "core/netmark.h"
#include "federation/circuit_breaker.h"
#include "federation/source.h"

namespace netmark {
namespace {

using server::HttpRequest;
using server::HttpResponse;

HttpRequest Get(const std::string& path, const std::string& query = "") {
  HttpRequest req;
  req.method = "GET";
  req.path = path;
  req.query = query;
  req.target = query.empty() ? path : path + "?" + query;
  return req;
}

/// A source that always refuses the connection — opens its breaker fast.
class FailingSource : public federation::Source {
 public:
  explicit FailingSource(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  federation::Capabilities capabilities() const override {
    return federation::Capabilities::Full();
  }
  using federation::Source::Execute;
  Result<std::vector<federation::FederatedHit>> Execute(
      const query::XdbQuery& query, const federation::CallContext& ctx) override {
    (void)query;
    (void)ctx;
    return Status::Unavailable("connection refused");
  }

 private:
  std::string name_;
};

class ObservabilityHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Make("obs_http");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    NetmarkOptions options;
    options.data_dir = dir_->Sub("data").string();
    // One failure trips a source's breaker; no retries, no backoff sleeps.
    options.router.breaker.failure_threshold = 1;
    options.router.breaker.cooldown_ms = 60000;
    options.router.max_retries = 0;
    options.router.backoff = BackoffPolicy::None();
    options.router.sleep_ms = [](int64_t) {};
    auto nm = Netmark::Open(options);
    ASSERT_TRUE(nm.ok());
    nm_ = std::move(*nm);
    ASSERT_TRUE(
        nm_->IngestContent("memo.txt", "OVERVIEW\nengine status green\n").ok());
  }

  HttpResponse Handle(const HttpRequest& req) { return nm_->service()->Handle(req); }

  std::unique_ptr<TempDir> dir_;
  std::unique_ptr<Netmark> nm_;
};

TEST_F(ObservabilityHttpTest, MetricsEndpointExposesRegistry) {
  // Drive a query first so the counters are nonzero.
  HttpResponse query = Handle(Get("/xdb", "context=Overview"));
  ASSERT_EQ(query.status, 200);

  HttpResponse resp = Handle(Get("/metrics"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers["Content-Type"], "text/plain; version=0.0.4; charset=utf-8");
  // Request accounting: the /xdb hit above is already visible.
  EXPECT_NE(resp.body.find("# TYPE netmark_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(resp.body.find("netmark_http_requests_total{route=\"/xdb\"} 1"),
            std::string::npos);
  // Query-latency histogram series.
  EXPECT_NE(resp.body.find("# TYPE netmark_query_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(resp.body.find("netmark_query_latency_micros_count 1"),
            std::string::npos);
  // Executor metrics re-homed onto the instance registry.
  EXPECT_NE(resp.body.find("netmark_xdb_executes_total 1"), std::string::npos);
  // Ingestion histograms are registered (by the facade wiring) even before a
  // daemon runs.
  EXPECT_NE(resp.body.find("netmark_federation_queries_total"), std::string::npos);
  // /metrics counts itself (the increment lands before the render).
  EXPECT_NE(resp.body.find("netmark_http_requests_total{route=\"/metrics\"} 1"),
            std::string::npos);
  HttpResponse again = Handle(Get("/metrics"));
  EXPECT_NE(again.body.find("netmark_http_requests_total{route=\"/metrics\"} 2"),
            std::string::npos);
}

TEST_F(ObservabilityHttpTest, HealthzReportsOkWithStoreCounts) {
  HttpResponse resp = Handle(Get("/healthz"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers["Content-Type"], "application/json");
  EXPECT_NE(resp.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"documents\":1"), std::string::npos);
  EXPECT_NE(resp.body.find("\"daemon\":null"), std::string::npos);
  EXPECT_NE(resp.body.find("\"breakers\":[]"), std::string::npos);
}

TEST_F(ObservabilityHttpTest, HealthzReportsQueryCacheState) {
  // Cold cache: one miss from the first query, then a hit on the repeat.
  ASSERT_EQ(Handle(Get("/xdb", "context=Overview")).status, 200);
  ASSERT_EQ(Handle(Get("/xdb", "context=Overview")).status, 200);

  HttpResponse resp = Handle(Get("/healthz"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"query_cache\":{\"enabled\":true"),
            std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"entries\":1"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("\"hits\":1"), std::string::npos);
  EXPECT_NE(resp.body.find("\"misses\":1"), std::string::npos);
  EXPECT_NE(resp.body.find("\"hit_ratio\":0.5000"), std::string::npos);
  EXPECT_NE(resp.body.find("\"plan_entries\":1"), std::string::npos);

  // The cache counters are also on /metrics.
  HttpResponse metrics = Handle(Get("/metrics"));
  EXPECT_NE(metrics.body.find("netmark_query_cache_hits_total 1"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("netmark_query_cache_misses_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("netmark_query_cache_entries 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("netmark_query_plan_cache_entries 1"),
            std::string::npos);
}

TEST_F(ObservabilityHttpTest, TraceAnnotatesCacheOutcome) {
  // The same annotation feeds slow-query log lines (they render the span
  // tree), so `cache=hit|miss` is asserted here through the trace surface.
  HttpResponse cold = Handle(Get("/xdb", "context=Overview&trace=1"));
  ASSERT_EQ(cold.status, 200);
  EXPECT_NE(cold.body.find("<annotation key=\"cache\" value=\"miss\""),
            std::string::npos)
      << cold.body;
  HttpResponse warm = Handle(Get("/xdb", "context=Overview&trace=1"));
  EXPECT_NE(warm.body.find("<annotation key=\"cache\" value=\"hit\""),
            std::string::npos)
      << warm.body;
}

TEST_F(ObservabilityHttpTest, HealthzDegradedWhenBreakerOpens) {
  ASSERT_TRUE(nm_->RegisterSource(std::make_shared<FailingSource>("flaky")).ok());
  ASSERT_TRUE(nm_->DefineDatabank("bank", {"flaky"}).ok());

  // The failing fan-out trips the breaker (threshold 1, no retries).
  HttpResponse query = Handle(Get("/xdb", "databank=bank&content=engine"));
  ASSERT_EQ(query.status, 200) << "partial results still answer: " << query.body;

  HttpResponse resp = Handle(Get("/healthz"));
  ASSERT_EQ(resp.status, 200) << "degraded is a status field, not an HTTP error";
  EXPECT_NE(resp.body.find("\"status\":\"degraded\""), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"source\":\"flaky\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"state\":\"open\""), std::string::npos);

  // The breaker-state gauge mirrors it on /metrics (closed=0 half-open=1
  // open=2).
  HttpResponse metrics = Handle(Get("/metrics"));
  EXPECT_NE(metrics.body.find("netmark_breaker_state{source=\"flaky\"} 2"),
            std::string::npos)
      << metrics.body;
}

TEST_F(ObservabilityHttpTest, TraceParamAppendsSpanTree) {
  HttpResponse resp = Handle(Get("/xdb", "context=Overview&trace=1"));
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("<trace total_us="), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("name=\"xdb\""), std::string::npos);
  EXPECT_NE(resp.body.find("name=\"execute\""), std::string::npos);
  EXPECT_NE(resp.body.find("<annotation key=\"hits\" value=\"1\""),
            std::string::npos)
      << resp.body;

  // Without the flag the response is unchanged.
  HttpResponse plain = Handle(Get("/xdb", "context=Overview"));
  EXPECT_EQ(plain.body.find("<trace"), std::string::npos);
}

TEST_F(ObservabilityHttpTest, FederatedTraceCoversFanOut) {
  ASSERT_TRUE(nm_->RegisterSelfAsSource("self").ok());
  ASSERT_TRUE(nm_->DefineDatabank("bank", {"self"}).ok());

  HttpResponse resp = Handle(Get("/xdb", "databank=bank&content=engine&trace=1"));
  ASSERT_EQ(resp.status, 200);
  // The span tree mirrors the fan-out: xdb -> federated -> source:self.
  EXPECT_NE(resp.body.find("name=\"xdb\""), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("name=\"federated\""), std::string::npos);
  EXPECT_NE(resp.body.find("name=\"source:self\""), std::string::npos);
  EXPECT_NE(resp.body.find("<annotation key=\"databank\" value=\"bank\""),
            std::string::npos);
}

TEST_F(ObservabilityHttpTest, XdbResponsesCarryTraceIdHeader) {
  // Default sample rate is 1.0: every request is traced and the trace id
  // surfaces as a response header so clients can correlate with /traces.
  HttpResponse resp = Handle(Get("/xdb", "context=Overview"));
  ASSERT_EQ(resp.status, 200);
  const std::string id = resp.headers["X-Netmark-Trace-Id"];
  ASSERT_EQ(id.size(), 32u) << "not a W3C trace id: " << id;
  for (char c : id) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
  }
  // The same id resolves on /traces right away.
  HttpResponse detail = Handle(Get("/traces", "id=" + id));
  ASSERT_EQ(detail.status, 200) << detail.body;
  EXPECT_NE(detail.body.find("\"id\":\"" + id + "\""), std::string::npos);
}

TEST_F(ObservabilityHttpTest, InboundTraceparentAdoptsUpstreamContext) {
  // A mediator upstream sends its W3C context; this instance must join that
  // trace (same id) and return its span subtree even without trace=1.
  const std::string upstream = "4bf92f3577b34da6a3ce929d0e0e4736";
  HttpRequest req = Get("/xdb", "context=Overview");
  req.headers["traceparent"] = "00-" + upstream + "-00f067aa0ba902b7-01";
  HttpResponse resp = Handle(req);
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.headers["X-Netmark-Trace-Id"], upstream);
  // The <trace> block rides along for the caller to graft.
  EXPECT_NE(resp.body.find("<trace total_us="), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("<annotation key=\"caller_span\" "
                           "value=\"00f067aa0ba902b7\""),
            std::string::npos)
      << resp.body;

  // A malformed header starts a fresh trace instead of erroring.
  HttpRequest bad = Get("/xdb", "context=Overview");
  bad.headers["traceparent"] = "00-not-a-trace";
  HttpResponse fresh = Handle(bad);
  ASSERT_EQ(fresh.status, 200);
  EXPECT_NE(fresh.headers["X-Netmark-Trace-Id"], upstream);
  EXPECT_EQ(fresh.headers["X-Netmark-Trace-Id"].size(), 32u);
}

TEST_F(ObservabilityHttpTest, TracesEndpointListsAndFetchesSpanTrees) {
  HttpResponse query = Handle(Get("/xdb", "context=Overview"));
  ASSERT_EQ(query.status, 200);
  const std::string id = query.headers["X-Netmark-Trace-Id"];
  ASSERT_FALSE(id.empty());

  // Listing: newest-first summaries plus the store's own vitals.
  HttpResponse list = Handle(Get("/traces"));
  ASSERT_EQ(list.status, 200);
  EXPECT_EQ(list.headers["Content-Type"], "application/json");
  EXPECT_NE(list.body.find("\"sample_rate\":1.0000"), std::string::npos)
      << list.body;
  EXPECT_NE(list.body.find("\"id\":\"" + id + "\""), std::string::npos);
  EXPECT_NE(list.body.find("\"root\":\"xdb\""), std::string::npos);

  // Detail: the full span tree with parent links and attribution spans.
  HttpResponse detail = Handle(Get("/traces", "id=" + id));
  ASSERT_EQ(detail.status, 200);
  EXPECT_NE(detail.body.find("\"name\":\"xdb\""), std::string::npos)
      << detail.body;
  EXPECT_NE(detail.body.find("\"name\":\"execute\""), std::string::npos);
  EXPECT_NE(detail.body.find("\"name\":\"compose\""), std::string::npos);
  EXPECT_NE(detail.body.find("\"name\":\"serialize\""), std::string::npos);
  EXPECT_NE(detail.body.find("\"name\":\"cache_probe\""), std::string::npos);
  EXPECT_NE(detail.body.find("\"parent\":-1"), std::string::npos);

  // The XML form feeds the CLI flame view.
  HttpResponse as_xml = Handle(Get("/traces", "id=" + id + "&format=xml"));
  ASSERT_EQ(as_xml.status, 200);
  EXPECT_NE(as_xml.body.find("<netmark-trace id=\"" + id + "\""),
            std::string::npos)
      << as_xml.body;
  EXPECT_NE(as_xml.body.find("name=\"xdb\""), std::string::npos);

  // Unknown ids 404; other methods are rejected.
  EXPECT_EQ(Handle(Get("/traces", "id=ffffffffffffffffffffffffffffffff")).status,
            404);
  HttpRequest post = Get("/traces");
  post.method = "POST";
  EXPECT_EQ(Handle(post).status, 405);
}

TEST_F(ObservabilityHttpTest, BuildInfoOnMetricsAndHealthz) {
  HttpResponse metrics = Handle(Get("/metrics"));
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("# TYPE netmark_build_info gauge"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("netmark_build_info{"), std::string::npos);
  EXPECT_NE(metrics.body.find("version=\""), std::string::npos);
  EXPECT_NE(metrics.body.find("git_sha=\""), std::string::npos);

  HttpResponse healthz = Handle(Get("/healthz"));
  ASSERT_EQ(healthz.status, 200);
  EXPECT_NE(healthz.body.find("\"build\":{\"version\":\""), std::string::npos)
      << healthz.body;
  EXPECT_NE(healthz.body.find("\"git_sha\":\""), std::string::npos);
}

TEST_F(ObservabilityHttpTest, TraceStoreCountersOnMetrics) {
  ASSERT_EQ(Handle(Get("/xdb", "context=Overview")).status, 200);
  HttpResponse metrics = Handle(Get("/metrics"));
  EXPECT_NE(metrics.body.find("# TYPE netmark_traces_sampled_total counter"),
            std::string::npos)
      << metrics.body;
  EXPECT_NE(metrics.body.find("netmark_traces_sampled_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("netmark_traces_retained_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("netmark_traces_dropped_total 0"),
            std::string::npos);
}

TEST_F(ObservabilityHttpTest, LatencyHistogramCarriesExemplar) {
  HttpResponse query = Handle(Get("/xdb", "context=Overview"));
  ASSERT_EQ(query.status, 200);
  const std::string id = query.headers["X-Netmark-Trace-Id"];
  ASSERT_FALSE(id.empty());

  HttpResponse metrics = Handle(Get("/metrics"));
  // The retained trace's id is attached to the latency bucket it landed in,
  // so a slow bucket on a dashboard links straight to /traces?id=.
  const std::string exemplar = " # {trace_id=\"" + id + "\"}";
  EXPECT_NE(metrics.body.find(exemplar), std::string::npos) << metrics.body;
  size_t pos = metrics.body.find(exemplar);
  size_t line_start = metrics.body.rfind('\n', pos);
  line_start = (line_start == std::string::npos) ? 0 : line_start + 1;
  EXPECT_EQ(metrics.body.compare(line_start,
                                 strlen("netmark_query_latency_micros_bucket"),
                                 "netmark_query_latency_micros_bucket"),
            0)
      << metrics.body.substr(line_start, 120);
}

}  // namespace
}  // namespace netmark
