#include "storage/database.h"

#include <unistd.h>

#include <filesystem>

#include "common/string_util.h"
#include "storage/crash_point.h"

namespace netmark::storage {

namespace fs = std::filesystem;

netmark::Result<std::unique_ptr<Database>> Database::Open(
    const std::string& dir, const StorageOptions& options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return netmark::Status::IOError("cannot create database directory " + dir + ": " +
                                    ec.message());
  }
  std::unique_ptr<Database> db(new Database(dir, options));
  if (options.wal_enabled) {
    // Replay a crashed predecessor's committed transactions into the heap
    // files BEFORE any table is opened (Table::Open scans pages to rebuild
    // its B-trees, so it must see post-recovery bytes).
    NETMARK_ASSIGN_OR_RETURN(db->recovery_,
                             RecoverDatabase(dir, db->WalPath(), options.env));
    NETMARK_ASSIGN_OR_RETURN(
        db->wal_, Wal::Open(db->WalPath(), options.wal_fsync, options.env));
  }
  NETMARK_ASSIGN_OR_RETURN(db->catalog_,
                           Catalog::Load(db->CatalogPath(), options.env));
  for (const TableDef& def : db->catalog_.tables()) {
    NETMARK_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> table,
        Table::Open(def.schema, db->TableFilePath(def.schema.name()), def.indexes,
                    db->MakePagerOptions()));
    db->tables_[def.schema.name()] = std::move(table);
  }
  // Opening a table marks pages dirty while rebuilding (none, normally) —
  // clear the capture sets so the first transaction logs only its own pages.
  for (auto& [name, table] : db->tables_) {
    (void)table->mutable_pager()->TakeDirtySinceMark();
  }
  // DDL counter survives restarts so assembly-cost benchmarks can account
  // full lifetimes.
  netmark::Env* env = options.env != nullptr ? options.env : netmark::Env::Default();
  auto counter = env->ReadFileToString(db->DdlCounterPath());
  if (counter.ok()) {
    auto v = netmark::ParseInt64(*counter);
    if (v.ok()) db->ddl_statements_ = static_cast<uint64_t>(*v);
  }
  return db;
}

Database::~Database() { (void)Flush(); }

std::string Database::TableFilePath(std::string_view table) const {
  return (fs::path(dir_) / (std::string(table) + ".heap")).string();
}
std::string Database::CatalogPath() const {
  return (fs::path(dir_) / "catalog.nmk").string();
}
std::string Database::DdlCounterPath() const {
  return (fs::path(dir_) / "ddl_count.nmk").string();
}
std::string Database::WalPath() const {
  return (fs::path(dir_) / "wal.nmk").string();
}

netmark::Result<Table*> Database::CreateTable(TableSchema schema) {
  if (tables_.count(schema.name()) != 0) {
    return netmark::Status::AlreadyExists("table " + schema.name() + " exists");
  }
  std::string name = schema.name();
  NETMARK_RETURN_NOT_OK(catalog_.AddTable(schema));
  NETMARK_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Open(std::move(schema), TableFilePath(name), {}, MakePagerOptions()));
  Table* raw = table.get();
  tables_[name] = std::move(table);
  ++ddl_statements_;
  NETMARK_RETURN_NOT_OK(catalog_.Save(CatalogPath(), options_.env));
  return raw;
}

netmark::Result<Table*> Database::GetTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return netmark::Status::NotFound("no table " + std::string(name));
  }
  return it->second.get();
}

netmark::Status Database::CreateIndex(std::string_view table,
                                      const std::string& index_name,
                                      const std::vector<std::string>& columns) {
  NETMARK_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  NETMARK_RETURN_NOT_OK(t->CreateIndex(index_name, columns));
  NETMARK_RETURN_NOT_OK(catalog_.AddIndex(table, IndexDef{index_name, columns}));
  ++ddl_statements_;
  return catalog_.Save(CatalogPath(), options_.env);
}

netmark::Status Database::DropTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return netmark::Status::NotFound("no table " + std::string(name));
  }
  tables_.erase(it);
  NETMARK_RETURN_NOT_OK(catalog_.RemoveTable(name));
  std::error_code ec;
  fs::remove(TableFilePath(name), ec);
  ++ddl_statements_;
  return catalog_.Save(CatalogPath(), options_.env);
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [name, t] : tables_) out.push_back(name);
  return out;
}

std::string Database::degraded_reason() const {
  std::lock_guard<std::mutex> lock(degraded_mu_);
  return degraded_reason_;
}

netmark::Status Database::DegradedError() const {
  std::lock_guard<std::mutex> lock(degraded_mu_);
  std::string msg = "store is read-only (degraded): " + degraded_reason_;
  return degraded_capacity_ ? netmark::Status::CapacityExceeded(std::move(msg))
                            : netmark::Status::Unavailable(std::move(msg));
}

void Database::MarkDegraded(const netmark::Status& cause) {
  if (options_.abort_on_fsync_error) {
    // Fail-stop policy: die before any state that contradicts the failed
    // write can be observed. _exit, not abort — no atexit flushing.
    ::_exit(42);
  }
  std::lock_guard<std::mutex> lock(degraded_mu_);
  if (!degraded_.load(std::memory_order_relaxed)) {
    degraded_reason_ = cause.ToString();
    degraded_capacity_ = cause.IsCapacityExceeded();
    degraded_.store(true, std::memory_order_release);
  }
}

netmark::Status Database::BeginTransaction() {
  if (degraded()) return DegradedError();
  if (wal_ == nullptr) return netmark::Status::OK();
  if (in_txn_) {
    return netmark::Status::Internal("transaction already open");
  }
  in_txn_ = true;
  return netmark::Status::OK();
}

netmark::Status Database::CommitTransaction() {
  if (wal_ == nullptr) return degraded() ? DegradedError() : netmark::Status::OK();
  if (!in_txn_) {
    return netmark::Status::Internal("no transaction open");
  }
  in_txn_ = false;
  uint64_t txn = next_txn_id_++;
  for (auto& [name, table] : tables_) {
    Pager* pager = table->mutable_pager();
    for (PageId id : pager->TakeDirtySinceMark()) {
      NETMARK_ASSIGN_OR_RETURN(Page page, pager->Fetch(id));
      // Stamp before staging so recovery replays images whose CRC already
      // matches their contents (Flush would stamp the same bytes again).
      PageStampChecksum(page.raw());
      wal_->StagePageImage(txn, name, id, page.raw());
    }
  }
  netmark::Status st = wal_->AppendCommit(txn);
  if (!st.ok()) {
    // The commit may or may not be on disk — nothing is acknowledged, and no
    // further mutation can be either: go read-only.
    MarkDegraded(st);
  }
  return st;
}

void Database::AbandonTransaction() {
  if (wal_ == nullptr) return;
  in_txn_ = false;
  wal_->DiscardStaged();
  // Dirty-since-mark state intentionally survives: the abandoned pages hold
  // in-memory junk that must still be logged with the next commit, or a
  // later in-place write to those pages would be replayed over stale bytes.
}

bool Database::ShouldCheckpoint() const {
  return wal_ != nullptr && wal_->size_bytes() >= options_.checkpoint_bytes;
}

netmark::Status Database::StagePendingAndUpgrades() {
  // One v0→v1 format scan per open: pages with spare trailer room are
  // upgraded (in MVCC mode the published current version is swapped for an
  // upgraded clone) and land in dirty-since-mark so this checkpoint stages
  // and persists them. Unreadable pages are left as is.
  if (!upgrade_scan_done_) {
    upgrade_scan_done_ = true;
    for (auto& [name, table] : tables_) {
      (void)table->mutable_pager()->UpgradeAllV0();
    }
  }
  // Stage every pending dirty-since-mark image (format upgrades plus junk
  // pages left by abandoned transactions) on the log before the heap flush
  // below: a crash mid-flush must find these images replayable, or a torn
  // heap write of an upgraded page would be unrecoverable.
  uint64_t txn = next_txn_id_++;
  uint64_t staged = 0;
  for (auto& [name, table] : tables_) {
    Pager* pager = table->mutable_pager();
    for (PageId id : pager->TakeDirtySinceMark()) {
      auto page = pager->Fetch(id);
      if (!page.ok()) continue;
      PageStampChecksum(page->raw());
      wal_->StagePageImage(txn, name, id, page->raw());
      ++staged;
    }
  }
  if (staged == 0) return netmark::Status::OK();
  NETMARK_RETURN_NOT_OK(wal_->AppendCommit(txn));
  // MVCC: the staged images included any unpublished working copies (junk
  // from abandoned transactions). Publish them now so the flush below writes
  // them under log coverage — otherwise their dirty-since-mark entry is
  // consumed here but the bytes would reach the heap only after a *later*
  // commit, without a staged image to replay over a torn write.
  if (options_.mvcc_snapshots) PublishVersions();
  return netmark::Status::OK();
}

netmark::Status Database::Checkpoint() {
  if (wal_ == nullptr) return Flush();
  if (degraded()) return DegradedError();
  if (in_txn_) {
    return netmark::Status::Internal(
        "checkpoint refused: transaction open");
  }
  auto fail = [this](netmark::Status st) {
    MarkDegraded(st);
    return st;
  };
  netmark::Status st = StagePendingAndUpgrades();
  if (!st.ok()) return fail(std::move(st));
  // Order matters: heap writes + fsync BEFORE the log shrinks, so a crash
  // anywhere in between still replays from the intact log.
  for (auto& [name, table] : tables_) {
    st = table->Flush();
    if (!st.ok()) return fail(std::move(st));
    MaybeCrashPoint("checkpoint_after_flush");
    st = table->mutable_pager()->SyncToDisk();
    if (!st.ok()) return fail(std::move(st));
  }
  st = catalog_.Save(CatalogPath(), options_.env);
  if (!st.ok()) return fail(std::move(st));
  netmark::Env* env = options_.env != nullptr ? options_.env : netmark::Env::Default();
  st = env->WriteFileAtomic(DdlCounterPath(), std::to_string(ddl_statements_));
  if (!st.ok()) return fail(std::move(st));
  MaybeCrashPoint("checkpoint_before_truncate");
  st = wal_->TruncateAll();
  if (!st.ok()) return fail(std::move(st));
  last_checkpoint_lsn_ = wal_->last_lsn();
  ++checkpoints_;
  return netmark::Status::OK();
}

Epoch Database::PublishVersions() {
  // Writer thread only (serialized with DDL by the store-level write lock),
  // so the relaxed read of our own last store is safe. The publish store is
  // seq_cst — see commit_epoch() for why.
  Epoch epoch = commit_epoch_.load(std::memory_order_relaxed) + 1;
  for (auto& [name, table] : tables_) {
    table->mutable_pager()->Publish(epoch);
    table->SealPendingRemovals(epoch);
  }
  commit_epoch_.store(epoch, std::memory_order_seq_cst);
  return epoch;
}

uint64_t Database::ReclaimVersions(const std::vector<Epoch>& pins, Epoch cap) {
  const Epoch watermark = pins.empty() ? cap : pins.front();
  uint64_t reclaimed = 0;
  for (auto& [name, table] : tables_) {
    reclaimed += table->mutable_pager()->ReclaimVersions(pins, cap);
    table->ApplyPendingRemovals(watermark);
  }
  return reclaimed;
}

uint64_t Database::retained_versions() const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->pager().retained_versions();
  }
  return total;
}

uint64_t Database::versions_reclaimed() const {
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->pager().versions_reclaimed();
  }
  return total;
}

netmark::Status Database::SyncWal() {
  if (wal_ == nullptr) return netmark::Status::OK();
  if (degraded()) return DegradedError();
  netmark::Status st = wal_->BatchSync();
  if (!st.ok()) MarkDegraded(st);
  return st;
}

netmark::Status Database::Flush() {
  if (wal_ != nullptr && !in_txn_) return Checkpoint();
  for (auto& [name, table] : tables_) {
    NETMARK_RETURN_NOT_OK(table->Flush());
  }
  NETMARK_RETURN_NOT_OK(catalog_.Save(CatalogPath(), options_.env));
  netmark::Env* env = options_.env != nullptr ? options_.env : netmark::Env::Default();
  return env->WriteFileAtomic(DdlCounterPath(), std::to_string(ddl_statements_));
}

}  // namespace netmark::storage
