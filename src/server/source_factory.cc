#include "server/source_factory.h"

#include <algorithm>

#include "federation/local_source.h"
#include "federation/remote_source.h"
#include "server/http_client.h"

namespace netmark::server {

federation::SourceFactory DefaultSourceFactory() {
  return [](const federation::SourceDecl& decl)
             -> netmark::Result<std::shared_ptr<federation::Source>> {
    if (decl.kind == "local") {
      NETMARK_ASSIGN_OR_RETURN(
          std::shared_ptr<federation::LocalStoreSource> source,
          federation::LocalStoreSource::OpenOwned(decl.name, decl.path));
      return std::shared_ptr<federation::Source>(std::move(source));
    }
    if (decl.kind == "remote") {
      HttpClientOptions options;
      if (decl.policy.timeout_ms > 0) {
        // The declared per-attempt budget also caps the socket-level work.
        options.total_timeout_ms = decl.policy.timeout_ms;
        options.connect_timeout_ms =
            std::min(options.connect_timeout_ms, decl.policy.timeout_ms);
      }
      return std::shared_ptr<federation::Source>(
          std::make_shared<federation::RemoteSource>(
              decl.name,
              std::make_unique<SocketTransport>(decl.host, decl.port, options),
              decl.capabilities));
    }
    return netmark::Status::InvalidArgument("unknown source kind: " + decl.kind);
  };
}

}  // namespace netmark::server
