#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace netmark::server {

netmark::Result<HttpResponse> HttpClient::Send(const HttpRequest& request) const {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return netmark::Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_ == "localhost" ? "127.0.0.1" : host_.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(fd);
    return netmark::Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return netmark::Status::Unavailable("connect " + host_ + ":" +
                                        std::to_string(port_) + ": " +
                                        std::strerror(errno));
  }
  std::string wire = request.Serialize();
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return netmark::Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  // Server closes after the response; read to EOF.
  std::string raw;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return netmark::Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseResponse(raw);
}

netmark::Result<HttpResponse> HttpClient::Get(const std::string& target) const {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Put(const std::string& target,
                                              std::string body,
                                              std::string content_type) const {
  HttpRequest req;
  req.method = "PUT";
  req.target = target;
  req.body = std::move(body);
  req.headers["Content-Type"] = std::move(content_type);
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Delete(const std::string& target) const {
  HttpRequest req;
  req.method = "DELETE";
  req.target = target;
  return Send(req);
}

netmark::Result<HttpResponse> HttpClient::Propfind(const std::string& target) const {
  HttpRequest req;
  req.method = "PROPFIND";
  req.target = target;
  req.headers["Depth"] = "1";
  return Send(req);
}

netmark::Result<std::string> SocketTransport::Get(const std::string& path_and_query) {
  NETMARK_ASSIGN_OR_RETURN(HttpResponse resp, client_.Get(path_and_query));
  if (resp.status != 200) {
    return netmark::Status::Unavailable("remote returned HTTP " +
                                        std::to_string(resp.status) + ": " + resp.body);
  }
  return resp.body;
}

}  // namespace netmark::server
