#include "textindex/snapshot.h"

#include <gtest/gtest.h>

#include "common/temp_dir.h"
#include "xml/parser.h"
#include "xmlstore/xml_store.h"

namespace netmark::textindex {
namespace {

InvertedIndex SampleIndex() {
  InvertedIndex ix;
  ix.Add(11, "the technology gap is shrinking");
  ix.Add(22, "shuttle engine anomaly gap");
  ix.Add(33, "technology review");
  return ix;
}

TEST(SnapshotTest, SaveLoadRoundTrip) {
  auto dir = TempDir::Make("snap");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->Sub("ix.snap").string();
  InvertedIndex original = SampleIndex();
  SnapshotToken token{5, 7, 100, 200};
  ASSERT_TRUE(SaveIndexSnapshot(original, token, path).ok());

  auto loaded = LoadIndexSnapshot(path, token);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->token.extra_a, 100u);
  EXPECT_EQ(loaded->token.extra_b, 200u);
  EXPECT_EQ(loaded->index.num_terms(), original.num_terms());
  EXPECT_EQ(loaded->index.num_postings(), original.num_postings());
  // Behavioral equivalence across query kinds.
  EXPECT_EQ(loaded->index.LookupTerm("gap"), original.LookupTerm("gap"));
  EXPECT_EQ(loaded->index.MatchPhrase({"technology", "gap"}),
            original.MatchPhrase({"technology", "gap"}));
  EXPECT_EQ(loaded->index.MatchPrefix("sh"), original.MatchPrefix("sh"));
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_TRUE(LoadIndexSnapshot("/nonexistent/ix.snap", SnapshotToken{})
                  .status()
                  .IsNotFound());
}

TEST(SnapshotTest, TokenMismatchIsStale) {
  auto dir = TempDir::Make("snap");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->Sub("ix.snap").string();
  ASSERT_TRUE(SaveIndexSnapshot(SampleIndex(), SnapshotToken{1, 2, 0, 0}, path).ok());
  EXPECT_TRUE(
      LoadIndexSnapshot(path, SnapshotToken{1, 3, 0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(
      LoadIndexSnapshot(path, SnapshotToken{9, 2, 0, 0}).status().IsInvalidArgument());
}

TEST(SnapshotTest, CorruptionDetected) {
  auto dir = TempDir::Make("snap");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->Sub("ix.snap").string();
  SnapshotToken token{1, 1, 0, 0};
  ASSERT_TRUE(SaveIndexSnapshot(SampleIndex(), token, path).ok());
  auto bytes = ReadFile(path);
  ASSERT_TRUE(bytes.ok());
  // Truncation.
  ASSERT_TRUE(WriteFile(path, bytes->substr(0, bytes->size() - 6)).ok());
  EXPECT_TRUE(LoadIndexSnapshot(path, token).status().IsCorruption());
  // Bad magic.
  std::string bad = *bytes;
  bad[0] = 'X';
  ASSERT_TRUE(WriteFile(path, bad).ok());
  EXPECT_TRUE(LoadIndexSnapshot(path, token).status().IsCorruption());
  // Trailing garbage.
  ASSERT_TRUE(WriteFile(path, *bytes + "junk").ok());
  EXPECT_TRUE(LoadIndexSnapshot(path, token).status().IsCorruption());
}

TEST(SnapshotTest, StoreUsesSnapshotAcrossReopen) {
  auto dir = TempDir::Make("snapstore");
  ASSERT_TRUE(dir.ok());
  int64_t doc_id = 0;
  {
    auto store = xmlstore::XmlStore::Open(dir->str());
    ASSERT_TRUE(store.ok());
    auto doc = xml::ParseXml("<d><h1>Sec</h1><p>snapshottable words</p></d>");
    ASSERT_TRUE(doc.ok());
    xmlstore::DocumentInfo info;
    info.file_name = "a.xml";
    doc_id = *(*store)->InsertDocument(*doc, info);
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_TRUE(std::filesystem::exists(dir->Sub("textindex.snap")));
  }
  {
    auto store = xmlstore::XmlStore::Open(dir->str());
    ASSERT_TRUE(store.ok());
    // Index served from the snapshot, behaviorally identical.
    EXPECT_EQ((*store)->TextLookup("snapshottable").size(), 1u);
    // Id counters restored: the next document continues the sequence.
    auto doc = xml::ParseXml("<x/>");
    xmlstore::DocumentInfo info;
    info.file_name = "b.xml";
    EXPECT_EQ(*(*store)->InsertDocument(*doc, info), doc_id + 1);
  }
}

TEST(SnapshotTest, StaleSnapshotFallsBackToRebuild) {
  auto dir = TempDir::Make("snapstale");
  ASSERT_TRUE(dir.ok());
  {
    auto store = xmlstore::XmlStore::Open(dir->str());
    ASSERT_TRUE(store.ok());
    auto doc = xml::ParseXml("<d><p>first words</p></d>");
    xmlstore::DocumentInfo info;
    info.file_name = "a.xml";
    ASSERT_TRUE((*store)->InsertDocument(*doc, info).ok());
    ASSERT_TRUE((*store)->Flush().ok());
    // More inserts after the snapshot; then "crash" (database flush only).
    auto doc2 = xml::ParseXml("<d><p>unsnapshotted words</p></d>");
    xmlstore::DocumentInfo info2;
    info2.file_name = "b.xml";
    ASSERT_TRUE((*store)->InsertDocument(*doc2, info2).ok());
    ASSERT_TRUE((*store)->database()->Flush().ok());  // bypass the snapshot
  }
  auto store = xmlstore::XmlStore::Open(dir->str());
  ASSERT_TRUE(store.ok());
  // The stale snapshot was rejected and the rebuild found everything.
  EXPECT_EQ((*store)->TextLookup("unsnapshotted").size(), 1u);
  EXPECT_EQ((*store)->TextLookup("first").size(), 1u);
}

TEST(SnapshotTest, EmptyIndexRoundTrips) {
  auto dir = TempDir::Make("snapempty");
  ASSERT_TRUE(dir.ok());
  std::string path = dir->Sub("ix.snap").string();
  InvertedIndex empty;
  ASSERT_TRUE(SaveIndexSnapshot(empty, SnapshotToken{0, 0, 1, 1}, path).ok());
  auto loaded = LoadIndexSnapshot(path, SnapshotToken{0, 0, 0, 0});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->index.num_terms(), 0u);
}

}  // namespace
}  // namespace netmark::textindex
