#include "federation/content_only_source.h"

#include "textindex/text_query.h"
#include "xml/serializer.h"

namespace netmark::federation {

void ContentOnlySource::AddDocument(const std::string& file_name,
                                    const xml::Document& doc) {
  Doc d;
  d.id = static_cast<int64_t>(docs_.size()) + 1;
  d.file_name = file_name;
  // Space-join text nodes: plain TextContent() concatenation would fuse the
  // last word of one node with the first of the next, breaking term matches.
  for (xml::NodeId n : doc.Descendants(doc.root())) {
    if (doc.kind(n) == xml::NodeKind::kText || doc.kind(n) == xml::NodeKind::kCData) {
      if (!d.text.empty()) d.text += ' ';
      d.text += doc.data(n);
    }
  }
  d.markup = xml::Serialize(doc, doc.root());
  docs_.push_back(std::move(d));
}

netmark::Result<std::vector<FederatedHit>> ContentOnlySource::Execute(
    const query::XdbQuery& query, const CallContext& ctx) {
  if (ctx.expired()) {
    return netmark::Status::DeadlineExceeded("content-only source " + name_ +
                                             ": deadline expired");
  }
  // A content-only server ignores any context clause entirely; it matches
  // keywords (no phrase support: phrases degrade to their words — the router
  // re-verifies after augmentation).
  std::vector<FederatedHit> out;
  if (query.content.empty()) return out;
  textindex::TextQuery parsed = textindex::ParseTextQuery(query.content);
  // Degrade phrases to conjunctions of terms (capability limitation).
  textindex::TextQuery degraded;
  for (const textindex::QueryClause& clause : parsed.clauses) {
    for (const std::string& word : clause.words) {
      textindex::QueryClause term;
      term.kind = textindex::QueryClause::Kind::kTerm;
      term.words = {word};
      degraded.clauses.push_back(std::move(term));
    }
  }
  for (const Doc& doc : docs_) {
    if (!textindex::Matches(degraded, doc.text)) continue;
    FederatedHit hit;
    hit.doc_id = doc.id;
    hit.file_name = doc.file_name;
    hit.text = doc.text;
    hit.markup = doc.markup;
    out.push_back(std::move(hit));
  }
  return out;
}

}  // namespace netmark::federation
