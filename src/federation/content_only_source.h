// ContentOnlySource: a deliberately limited source modeling systems like the
// NASA Lessons Learned Information Server, which "allows only 'Content
// search' kinds of queries" (paper §2.1.5). The router must augment context
// clauses itself from the returned documents.

#ifndef NETMARK_FEDERATION_CONTENT_ONLY_SOURCE_H_
#define NETMARK_FEDERATION_CONTENT_ONLY_SOURCE_H_

#include <string>
#include <vector>

#include "federation/source.h"
#include "xml/dom.h"

namespace netmark::federation {

/// \brief Keyword-search-only document server.
///
/// Documents are held as upmarked XML, but the query interface exposes only
/// single-/multi-term content matching over the flat text and returns whole
/// documents (text + raw markup) — exactly the shape the router's
/// augmentation path needs to exercise.
class ContentOnlySource : public Source {
 public:
  explicit ContentOnlySource(std::string name) : name_(std::move(name)) {}

  /// Adds a document (takes the upmarked DOM).
  void AddDocument(const std::string& file_name, const xml::Document& doc);

  const std::string& name() const override { return name_; }
  Capabilities capabilities() const override { return Capabilities::ContentOnly(); }
  using Source::Execute;
  netmark::Result<std::vector<FederatedHit>> Execute(
      const query::XdbQuery& query, const CallContext& ctx) override;

  size_t document_count() const { return docs_.size(); }

 private:
  struct Doc {
    int64_t id;
    std::string file_name;
    std::string text;    // flattened text for matching
    std::string markup;  // serialized XML for augmentation
  };
  std::string name_;
  std::vector<Doc> docs_;
};

}  // namespace netmark::federation

#endif  // NETMARK_FEDERATION_CONTENT_ONLY_SOURCE_H_
