#include "storage/heap_file.h"

#include <cstring>

#include "common/string_util.h"

namespace netmark::storage {

namespace {

// Overflow page layout:
//   bytes 0..1  : kOverflowMarker (distinguishes from slotted data pages)
//   byte  2     : format version (the slotted version byte 4 holds the next
//                 pointer here)
//   byte  3     : unused
//   bytes 4..7  : next overflow page id (kInvalidPage terminates)
//   bytes 8..11 : chunk length
//   bytes 12..  : chunk data
constexpr size_t kOverflowHeader = 12;
// New (v1) chunks leave room for the CRC trailer; legacy v0 chunks may run
// to the end of the page.
constexpr size_t kOverflowChunk = kPageSize - kOverflowHeader - kPageTrailerSize;
constexpr size_t kOverflowChunkV0Max = kPageSize - kOverflowHeader;

uint16_t ReadMarker(const uint8_t* raw) {
  uint16_t v;
  std::memcpy(&v, raw, 2);
  return v;
}

}  // namespace

netmark::Result<HeapFile> HeapFile::Open(Pager* pager) {
  HeapFile hf(pager);
  // Recover the append page (highest data page) and the live-record count.
  // Quarantined (bad-checksum) pages are skipped so the store still opens:
  // their records surface as DataLoss on access, not as a failure to start.
  uint64_t live = 0;
  for (PageId id = 0; id < pager->page_count(); ++id) {
    auto fetched = pager->FetchAt(id, kLatestEpoch);
    if (!fetched.ok()) {
      if (fetched.status().IsDataLoss()) continue;
      return fetched.status();
    }
    Page page = fetched->page();
    if (ReadMarker(page.raw()) == kOverflowMarker) continue;
    hf.tail_ = id;
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      std::string_view rec = page.Get(s);
      if (rec.empty()) continue;
      uint8_t flags = static_cast<uint8_t>(rec[0]);
      if ((flags & (kForwardFlag | kRelocatedFlag)) == 0) ++live;
    }
  }
  hf.live_records_.store(live, std::memory_order_relaxed);
  return hf;
}

netmark::Result<RowId> HeapFile::AppendSlot(std::string_view payload) {
  if (payload.size() > Page::kMaxInlineRecord) {
    return netmark::Status::Internal("payload exceeds page capacity");
  }
  if (tail_ != kInvalidPage) {
    NETMARK_ASSIGN_OR_RETURN(Page page, pager_->Fetch(tail_));
    if (page.CanInsert(payload.size())) {
      uint16_t slot = page.Insert(payload);
      pager_->MarkDirty(tail_);
      return RowId(tail_, slot);
    }
  }
  NETMARK_ASSIGN_OR_RETURN(PageId fresh, pager_->Allocate());
  tail_ = fresh;
  NETMARK_ASSIGN_OR_RETURN(Page page, pager_->Fetch(fresh));
  uint16_t slot = page.Insert(payload);
  pager_->MarkDirty(fresh);
  return RowId(fresh, slot);
}

netmark::Result<std::string> HeapFile::WriteOverflowPayload(std::string_view record) {
  // Write chunks; build the chain back-to-front so each page knows its next.
  size_t n_chunks = (record.size() + kOverflowChunk - 1) / kOverflowChunk;
  if (n_chunks == 0) n_chunks = 1;
  PageId next = kInvalidPage;
  for (size_t i = n_chunks; i-- > 0;) {
    size_t start = i * kOverflowChunk;
    size_t len = std::min(kOverflowChunk, record.size() - start);
    NETMARK_ASSIGN_OR_RETURN(PageId pid, pager_->Allocate());
    NETMARK_ASSIGN_OR_RETURN(Page page, pager_->Fetch(pid));
    uint8_t* raw = page.raw();
    uint16_t marker = kOverflowMarker;
    std::memcpy(raw, &marker, 2);
    // Allocate() initialized the buffer as a slotted v1 page; rewriting the
    // header as an overflow page moves the version byte to offset 2.
    raw[2] = kPageFormatV1;
    raw[3] = 0;
    std::memcpy(raw + 4, &next, 4);
    auto len32 = static_cast<uint32_t>(len);
    std::memcpy(raw + 8, &len32, 4);
    std::memcpy(raw + kOverflowHeader, record.data() + start, len);
    pager_->MarkDirty(pid);
    next = pid;
  }
  // Slot payload after the tag byte: first page id (4B) + total length (8B).
  std::string payload;
  payload.resize(12);
  std::memcpy(payload.data(), &next, 4);
  uint64_t total = record.size();
  std::memcpy(payload.data() + 4, &total, 8);
  return payload;
}

netmark::Result<std::string> HeapFile::ReadOverflow(std::string_view payload,
                                                    Epoch epoch) const {
  if (payload.size() != 12) {
    return netmark::Status::Corruption("bad overflow descriptor size");
  }
  PageId pid;
  uint64_t total;
  std::memcpy(&pid, payload.data(), 4);
  std::memcpy(&total, payload.data() + 4, 8);
  std::string out;
  out.reserve(total);
  while (pid != kInvalidPage) {
    // Overflow pages are born with their record and never rewritten (space
    // is not reused), so they are visible at every epoch the record is.
    NETMARK_ASSIGN_OR_RETURN(PageRef ref, pager_->FetchAt(pid, epoch));
    const uint8_t* raw = ref.raw();
    if (ReadMarker(raw) != kOverflowMarker) {
      return netmark::Status::Corruption("overflow chain reached a data page");
    }
    uint32_t len;
    std::memcpy(&len, raw + 8, 4);
    // Bound by the v0 physical maximum: legacy chunks may use the trailer
    // bytes for data.
    if (len > kOverflowChunkV0Max) {
      return netmark::Status::Corruption("bad overflow chunk");
    }
    out.append(reinterpret_cast<const char*>(raw + kOverflowHeader), len);
    std::memcpy(&pid, raw + 4, 4);
  }
  if (out.size() != total) {
    return netmark::Status::Corruption(
        netmark::StringPrintf("overflow chain length %zu != expected %llu", out.size(),
                              static_cast<unsigned long long>(total)));
  }
  return out;
}

netmark::Result<RowId> HeapFile::InsertTagged(std::string_view record,
                                              uint8_t extra_flags) {
  std::string payload;
  if (record.size() + 1 > Page::kMaxInlineRecord) {
    NETMARK_ASSIGN_OR_RETURN(std::string desc, WriteOverflowPayload(record));
    payload.reserve(desc.size() + 1);
    payload += static_cast<char>(kOverflowFlag | extra_flags);
    payload += desc;
  } else {
    payload.reserve(record.size() + 1);
    payload += static_cast<char>(extra_flags);
    payload.append(record.data(), record.size());
  }
  return AppendSlot(payload);
}

netmark::Result<RowId> HeapFile::Insert(std::string_view record) {
  NETMARK_ASSIGN_OR_RETURN(RowId id, InsertTagged(record, 0));
  live_records_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

netmark::Result<RowId> HeapFile::Resolve(RowId id, Epoch epoch) const {
  RowId cur = id;
  for (int hops = 0; hops < 64; ++hops) {
    NETMARK_ASSIGN_OR_RETURN(PageRef ref, pager_->FetchAt(cur.page, epoch));
    Page page = ref.page();
    std::string_view rec = page.Get(cur.slot);
    if (rec.empty()) {
      return netmark::Status::NotFound("no record at " + id.ToString());
    }
    uint8_t flags = static_cast<uint8_t>(rec[0]);
    if ((flags & kForwardFlag) == 0) return cur;
    if (rec.size() != 9) return netmark::Status::Corruption("bad forward record");
    uint64_t packed;
    std::memcpy(&packed, rec.data() + 1, 8);
    cur = RowId::Unpack(packed);
  }
  return netmark::Status::Corruption("forward chain too long at " + id.ToString());
}

netmark::Result<std::string> HeapFile::Get(RowId id, Epoch epoch) const {
  NETMARK_ASSIGN_OR_RETURN(RowId loc, Resolve(id, epoch));
  NETMARK_ASSIGN_OR_RETURN(PageRef ref, pager_->FetchAt(loc.page, epoch));
  Page page = ref.page();
  std::string_view rec = page.Get(loc.slot);
  uint8_t flags = static_cast<uint8_t>(rec[0]);
  if (flags & kOverflowFlag) return ReadOverflow(rec.substr(1), epoch);
  return std::string(rec.substr(1));
}

bool HeapFile::Exists(RowId id, Epoch epoch) const {
  auto loc = Resolve(id, epoch);
  return loc.ok();
}

netmark::Status HeapFile::Update(RowId id, std::string_view record) {
  NETMARK_ASSIGN_OR_RETURN(RowId loc, Resolve(id, kWriterEpoch));
  NETMARK_ASSIGN_OR_RETURN(Page page, pager_->Fetch(loc.page));
  std::string_view old = page.Get(loc.slot);
  uint8_t old_flags = static_cast<uint8_t>(old[0]);
  // In-place when the new inline payload fits in the old footprint and the
  // old record was inline (overwriting an overflow descriptor would leak the
  // chain *and* lose the data layout).
  if ((old_flags & kOverflowFlag) == 0 && record.size() + 1 <= old.size()) {
    std::string payload;
    payload.reserve(record.size() + 1);
    payload += static_cast<char>(old_flags);
    payload.append(record.data(), record.size());
    page.UpdateInPlace(loc.slot, payload);
    pager_->MarkDirty(loc.page);
    return netmark::Status::OK();
  }
  // Relocate: write the new bytes elsewhere, then point the *original* slot
  // at them (collapsing any existing chain).
  NETMARK_ASSIGN_OR_RETURN(RowId fresh, InsertTagged(record, kRelocatedFlag));
  if (loc != id) {
    // Tombstone the old relocation target.
    NETMARK_ASSIGN_OR_RETURN(Page old_page, pager_->Fetch(loc.page));
    old_page.Delete(loc.slot);
    pager_->MarkDirty(loc.page);
  }
  NETMARK_ASSIGN_OR_RETURN(Page origin, pager_->Fetch(id.page));
  std::string_view origin_rec = origin.Get(id.slot);
  std::string fwd;
  fwd.resize(9);
  fwd[0] = static_cast<char>(kForwardFlag |
                             (static_cast<uint8_t>(origin_rec[0]) & kRelocatedFlag));
  uint64_t packed = fresh.Pack();
  std::memcpy(fwd.data() + 1, &packed, 8);
  if (fwd.size() <= origin_rec.size()) {
    origin.UpdateInPlace(id.slot, fwd);
  } else {
    // The original record was shorter than a forward pointer (tiny record).
    // Tombstone + fresh slot is not an option (RowId must stay); instead we
    // rely on pages never being compacted: grow into the slot's recorded
    // length is impossible, so fall back to rewriting the slot via delete +
    // insert at the same slot index — not supported by the page layout.
    // In practice EncodeRow always produces >= 9 bytes for NETMARK rows; guard
    // explicitly so the invariant is visible.
    return netmark::Status::Internal(
        "record too small to hold a forward pointer (min 8-byte rows required)");
  }
  pager_->MarkDirty(id.page);
  return netmark::Status::OK();
}

netmark::Status HeapFile::Delete(RowId id) {
  NETMARK_ASSIGN_OR_RETURN(RowId loc, Resolve(id, kWriterEpoch));
  NETMARK_ASSIGN_OR_RETURN(Page page, pager_->Fetch(loc.page));
  page.Delete(loc.slot);
  pager_->MarkDirty(loc.page);
  if (loc != id) {
    NETMARK_ASSIGN_OR_RETURN(Page origin, pager_->Fetch(id.page));
    origin.Delete(id.slot);
    pager_->MarkDirty(id.page);
  }
  live_records_.fetch_sub(1, std::memory_order_relaxed);
  return netmark::Status::OK();
}

netmark::Status HeapFile::Scan(
    const std::function<netmark::Status(RowId, std::string_view)>& fn,
    Epoch epoch) const {
  for (PageId pid = 0; pid < pager_->page_count(); ++pid) {
    // Quarantined pages are invisible to scans; their documents are reported
    // as DataLoss on direct access instead. Pages born after the snapshot's
    // epoch hold only records it cannot see — skip them like empty pages.
    auto fetched = pager_->FetchAt(pid, epoch);
    if (!fetched.ok()) {
      if (fetched.status().IsDataLoss() || fetched.status().IsNotFound()) {
        continue;
      }
      return fetched.status();
    }
    Page page = fetched->page();
    if (ReadMarker(page.raw()) == kOverflowMarker) continue;
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      std::string_view rec = page.Get(s);
      if (rec.empty()) continue;
      uint8_t flags = static_cast<uint8_t>(rec[0]);
      if (flags & kRelocatedFlag) continue;  // reached via its origin slot
      RowId rid(pid, s);
      if (flags & kForwardFlag) {
        NETMARK_ASSIGN_OR_RETURN(std::string data, Get(rid, epoch));
        NETMARK_RETURN_NOT_OK(fn(rid, data));
      } else if (flags & kOverflowFlag) {
        NETMARK_ASSIGN_OR_RETURN(std::string data,
                                 ReadOverflow(rec.substr(1), epoch));
        NETMARK_RETURN_NOT_OK(fn(rid, data));
      } else {
        NETMARK_RETURN_NOT_OK(fn(rid, rec.substr(1)));
      }
    }
  }
  return netmark::Status::OK();
}

}  // namespace netmark::storage
