#include "convert/text_converter.h"

#include "common/string_util.h"
#include "convert/heading_heuristics.h"

namespace netmark::convert {

bool TextConverter::Sniff(std::string_view content) const {
  // Plain text is the fallback: accept anything that is not markup-shaped
  // and contains no NUL bytes.
  if (content.find('\0') != std::string_view::npos) return false;
  std::string_view t = netmark::TrimView(content);
  return t.empty() || t[0] != '<';
}

netmark::Result<xml::Document> TextConverter::Convert(std::string_view content,
                                                      const ConvertContext& ctx) const {
  UpmarkBuilder builder(ctx.file_name, format());
  std::string paragraph;
  auto flush = [&]() {
    if (!paragraph.empty()) {
      builder.AddParagraph(std::move(paragraph));
      paragraph.clear();
    }
  };
  for (const std::string& raw : netmark::Split(content, '\n')) {
    std::string_view line = netmark::TrimView(raw);
    if (line.empty()) {
      flush();
      continue;
    }
    if (LooksLikeHeading(line)) {
      flush();
      builder.BeginSection(std::string(line));
      continue;
    }
    if (!paragraph.empty()) paragraph += ' ';
    paragraph += line;
  }
  flush();
  return builder.Finish();
}

}  // namespace netmark::convert
