#include "observability/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace netmark::observability {

namespace {

/// Escapes a label value for the exposition format (\, ", \n).
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}` (empty string for no labels). `extra` lets the
/// histogram renderer splice in its `le` label.
std::string RenderLabels(const Labels& labels, const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

// --- Histogram ---

const std::vector<int64_t>& Histogram::LatencyBucketsMicros() {
  // ~exponential (x2..x2.5) from 50us to 60s: fine resolution where
  // interactive queries live, coarse tail for timeouts.
  static const std::vector<int64_t> kBounds = {
      50,      100,     250,      500,      1000,     2500,     5000,
      10000,   25000,   50000,    100000,   250000,   500000,   1000000,
      2500000, 5000000, 10000000, 30000000, 60000000};
  return kBounds;
}

Histogram::Histogram(const std::atomic<bool>* enabled, std::vector<int64_t> bounds)
    : enabled_(enabled), bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  exemplars_ = std::make_unique<ExemplarSlot[]>(bounds_.size() + 1);
}

void Histogram::Observe(int64_t value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
               bounds_.begin();  // first bound >= value; bounds_.size() = overflow
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::ObserveWithExemplar(int64_t value, std::string_view trace_id) {
  Observe(value);
  if (trace_id.empty() || !enabled_->load(std::memory_order_relaxed)) return;
  size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
               bounds_.begin();
  ExemplarSlot& slot = exemplars_[idx];
  if (!slot.mu.try_lock()) return;  // a concurrent writer wins; no waiting
  slot.exemplar.value = value;
  slot.exemplar.trace_id.assign(trace_id.data(), trace_id.size());
  slot.exemplar.timestamp_seconds = netmark::WallSeconds();
  slot.mu.unlock();
}

std::vector<Exemplar> Histogram::Exemplars() const {
  std::vector<Exemplar> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    ExemplarSlot& slot = exemplars_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    out[i] = slot.exemplar;
  }
  return out;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0;
  // Rank of the target sample (1-based); ceil keeps q=1 inside the data.
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i == bounds_.size()) {
      // Overflow bucket: no upper bound to interpolate toward; report the
      // last finite bound as a saturated floor.
      return static_cast<double>(bounds_.back());
    }
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
    const double upper = static_cast<double>(bounds_[i]);
    const double within = (target - static_cast<double>(before)) /
                          static_cast<double>(counts[i]);
    return lower + (upper - lower) * within;
  }
  return static_cast<double>(bounds_.back());
}

// --- MetricsRegistry ---

MetricsRegistry::MetricsRegistry() {
  const char* disabled = std::getenv("NETMARK_METRICS_DISABLED");
  if (disabled != nullptr && disabled[0] == '1') enabled_.store(false);
  const char* exemplars = std::getenv("NETMARK_METRICS_EXEMPLARS");
  if (exemplars != nullptr && exemplars[0] == '0') exemplars_enabled_ = false;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(Key{name, labels});
  if (inserted) {
    it->second.kind = Kind::kCounter;
    it->second.counter.reset(new Counter(&enabled_));
  } else if (it->second.kind != Kind::kCounter) {
    std::fprintf(stderr, "metrics: %s re-registered with a different kind\n",
                 name.c_str());
    std::abort();
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(Key{name, labels});
  if (inserted) {
    it->second.kind = Kind::kGauge;
    it->second.gauge.reset(new Gauge(&enabled_));
  } else if (it->second.kind != Kind::kGauge) {
    std::fprintf(stderr, "metrics: %s re-registered with a different kind\n",
                 name.c_str());
    std::abort();
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         const std::vector<int64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = metrics_.try_emplace(Key{name, labels});
  if (inserted) {
    it->second.kind = Kind::kHistogram;
    it->second.histogram.reset(new Histogram(&enabled_, bounds));
  } else if (it->second.kind != Kind::kHistogram) {
    std::fprintf(stderr, "metrics: %s re-registered with a different kind\n",
                 name.c_str());
    std::abort();
  }
  return it->second.histogram.get();
}

void MetricsRegistry::SetCallbackGauge(const std::string& name, const Labels& labels,
                                       std::function<double()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[Key{name, labels}];
  entry.kind = Kind::kCallbackGauge;
  entry.callback = std::move(callback);
}

void MetricsRegistry::SetCallbackCounter(const std::string& name,
                                         const Labels& labels,
                                         std::function<uint64_t()> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = metrics_[Key{name, labels}];
  entry.kind = Kind::kCallbackCounter;
  entry.counter_callback = std::move(callback);
}

MetricsSnapshot MetricsRegistry::Collect() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({key.name, key.labels, entry.counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back(
            {key.name, key.labels, static_cast<double>(entry.gauge->value())});
        break;
      case Kind::kCallbackGauge:
        snap.gauges.push_back({key.name, key.labels, entry.callback()});
        break;
      case Kind::kCallbackCounter:
        snap.counters.push_back({key.name, key.labels, entry.counter_callback()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        HistogramSample sample;
        sample.name = key.name;
        sample.labels = key.labels;
        sample.count = h.count();
        sample.sum = h.sum();
        sample.p50 = h.Quantile(0.50);
        sample.p95 = h.Quantile(0.95);
        sample.p99 = h.Quantile(0.99);
        std::vector<uint64_t> counts = h.BucketCounts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          sample.buckets.emplace_back(h.bounds()[i], cumulative);
        }
        cumulative += counts.back();
        sample.buckets.emplace_back(std::numeric_limits<int64_t>::max(), cumulative);
        sample.exemplars = h.Exemplars();
        snap.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  return snap;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const MetricsSnapshot snap = Collect();
  std::string out;
  out.reserve(4096);
  std::string last_type_line;  // emit one # TYPE per family
  auto type_line = [&out, &last_type_line](const std::string& name,
                                           const char* type) {
    std::string line = "# TYPE " + name + " " + type + "\n";
    if (line != last_type_line) {
      out += line;
      last_type_line = line;
    }
  };
  for (const CounterSample& c : snap.counters) {
    type_line(c.name, "counter");
    out += c.name + RenderLabels(c.labels) + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    type_line(g.name, "gauge");
    out += g.name + RenderLabels(g.labels) + " " + FormatDouble(g.value) + "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    type_line(h.name, "histogram");
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      const auto& [bound, cumulative] = h.buckets[i];
      std::string le = bound == std::numeric_limits<int64_t>::max()
                           ? std::string("+Inf")
                           : std::to_string(bound);
      out += h.name + "_bucket" + RenderLabels(h.labels, "le=\"" + le + "\"") +
             " " + std::to_string(cumulative);
      // OpenMetrics exemplar suffix: links this bucket to a retained trace
      // (GET /traces?id=). Classic 0.0.4 scrapers that reject exemplars can
      // be pointed at the same endpoint with NETMARK_METRICS_EXEMPLARS=0.
      if (i < h.exemplars.size() && !h.exemplars[i].trace_id.empty() &&
          exemplars_enabled_) {
        out += " # {trace_id=\"" + h.exemplars[i].trace_id + "\"} " +
               std::to_string(h.exemplars[i].value) + " " +
               std::to_string(h.exemplars[i].timestamp_seconds);
      }
      out += "\n";
    }
    out += h.name + "_sum" + RenderLabels(h.labels) + " " + std::to_string(h.sum) + "\n";
    out += h.name + "_count" + RenderLabels(h.labels) + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace netmark::observability
