// XSLT engine edge cases beyond the core instruction tests.

#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xslt/stylesheet.h"

namespace netmark::xslt {
namespace {

std::string ApplySheet(const char* sheet, const char* source) {
  auto doc = xml::ParseXml(source);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  auto out = Transform(sheet, *doc);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return "";
  return xml::Serialize(*out);
}

TEST(TransformEdgeTest, LaterTemplateWinsPriorityTies) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"x\"><first/></xsl:template>"
      "<xsl:template match=\"x\"><second/></xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<x/>"), "<second/>");
}

TEST(TransformEdgeTest, DescendantSelectInForEach) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:for-each select=\"//leaf\"><l><xsl:value-of select=\".\"/></l>"
      "</xsl:for-each></xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet,
                       "<r><a><leaf>1</leaf></a><b><c><leaf>2</leaf></c></b></r>"),
            "<l>1</l><l>2</l>");
}

TEST(TransformEdgeTest, NestedForEachUsesInnerContext) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:for-each select=\"db/table\">"
      "<t name=\"{@n}\">"
      "<xsl:for-each select=\"row\">"
      "<r><xsl:value-of select=\"@id\"/></r>"
      "</xsl:for-each>"
      "</t>"
      "</xsl:for-each>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet,
                       "<db><table n=\"a\"><row id=\"1\"/><row id=\"2\"/></table>"
                       "<table n=\"b\"><row id=\"3\"/></table></db>"),
            "<t name=\"a\"><r>1</r><r>2</r></t><t name=\"b\"><r>3</r></t>");
}

TEST(TransformEdgeTest, EmptyTemplateSuppressesSubtree) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"secret\"/>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<d>keep<secret>drop</secret>also</d>"), "keepalso");
}

TEST(TransformEdgeTest, RecursiveApplyTemplatesOnNestedStructure) {
  const char* sheet =
      "<xsl:stylesheet>"
      "<xsl:template match=\"folder\">"
      "<dir name=\"{@name}\"><xsl:apply-templates/></dir>"
      "</xsl:template>"
      "<xsl:template match=\"file\"><f><xsl:value-of select=\"@name\"/></f>"
      "</xsl:template>"
      "</xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet,
                       "<folder name=\"root\"><file name=\"a\"/>"
                       "<folder name=\"sub\"><file name=\"b\"/></folder></folder>"),
            "<dir name=\"root\"><f>a</f><dir name=\"sub\"><f>b</f></dir></dir>");
}

TEST(TransformEdgeTest, ValueOfTakesFirstNodeOnly) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<v><xsl:value-of select=\"r/x\"/></v>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<r><x>first</x><x>second</x></r>"), "<v>first</v>");
}

TEST(TransformEdgeTest, ChooseWithNoMatchingBranchEmitsNothing) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"r\">"
      "<out><xsl:choose><xsl:when test=\"@missing\"><bad/></xsl:when>"
      "</xsl:choose></out>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<r/>"), "<out/>");
}

TEST(TransformEdgeTest, AttributeValueTemplateWithMultipleBraces) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"e\">"
      "<o id=\"{@a}-{@b}\" literal=\"plain\"/>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet, "<e a=\"1\" b=\"2\"/>"),
            "<o id=\"1-2\" literal=\"plain\"/>");
}

TEST(TransformEdgeTest, SortIsStableForEqualKeys) {
  const char* sheet =
      "<xsl:stylesheet><xsl:template match=\"/\">"
      "<xsl:for-each select=\"l/e\"><xsl:sort select=\"@k\"/>"
      "<v><xsl:value-of select=\".\"/></v></xsl:for-each>"
      "</xsl:template></xsl:stylesheet>";
  EXPECT_EQ(ApplySheet(sheet,
                       "<l><e k=\"b\">3</e><e k=\"a\">1</e><e k=\"a\">2</e></l>"),
            "<v>1</v><v>2</v><v>3</v>");
}

}  // namespace
}  // namespace netmark::xslt
