#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace netmark {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "Not found: missing thing");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, DeadlineExceededFormatsItsName) {
  Status st = Status::DeadlineExceeded("query budget spent");
  EXPECT_NE(st.ToString().find("Deadline exceeded"), std::string::npos);
  EXPECT_NE(st.ToString().find("query budget spent"), std::string::npos);
  EXPECT_FALSE(st.IsTimeout()) << "distinct from the I/O-level Timeout code";
}

TEST(StatusTest, CopyPreservesState) {
  Status a = Status::IOError("disk gone");
  Status b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk gone");
  EXPECT_TRUE(a.IsIOError());  // source unchanged
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status a = Status::IOError("disk gone");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsIOError());
}

TEST(StatusTest, WithContextPrefixes) {
  Status st = Status::ParseError("bad digit").WithContext("line 7");
  EXPECT_EQ(st.message(), "line 7: bad digit");
  EXPECT_TRUE(st.IsParseError());
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

Status FailingHelper() { return Status::Timeout("slow"); }

Status PropagationDemo() {
  NETMARK_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("unreached");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagationDemo().IsTimeout());
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  NETMARK_ASSIGN_OR_RETURN(int h, Half(v));
  return Half(h);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Half(7);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*Quarter(12), 3);
  EXPECT_FALSE(Quarter(10).ok());  // 10/2=5, odd
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 42);
}

}  // namespace
}  // namespace netmark
